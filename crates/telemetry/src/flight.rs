//! The flight recorder: an always-on, bounded, lock-light ring of the
//! last N trace records per thread, cheap enough to leave installed in
//! production.
//!
//! Unlike the test-only [`RingBufferSubscriber`](crate::RingBufferSubscriber)
//! — one global ring behind one mutex — the flight recorder keeps one
//! ring *per thread*, reached through a thread-local handle, so recording
//! takes an uncontended lock and never blocks on other threads. The
//! point is crash forensics: a worker that dies mid-task leaves its last
//! seconds of spans readable, either on demand (the `/spans` endpoint
//! calls [`dump_json`]) or post-mortem (the panic hook installed by
//! [`install_panic_hook`] writes `flight-<pid>.json`).
//!
//! Rings are bounded; when one overflows the oldest record is dropped and
//! the `telemetry.flight.dropped_events` counter is bumped, so loss is
//! visible rather than silent.
//!
//! ## Tail-based retention
//!
//! FIFO eviction is the wrong policy for forensics: the traces worth
//! keeping (the straggler task, the errored retry) are exactly the ones
//! that finished long ago and age out first under load. A caller that
//! decides — *after* a trace ends — that it was interesting can call
//! [`retain_trace`]; from then on, records belonging to that trace are
//! moved to a per-thread `kept` buffer on eviction instead of being
//! dropped. The decision is tail-based (made at task end, against e.g. a
//! compute-time percentile from a [`crate::HistoryRing`]) rather than
//! head-based sampling, so nothing needs to guess upfront which traces
//! will matter. When nothing is retained the hot path pays one extra
//! relaxed atomic load on the overflow branch and nothing anywhere else.

use std::cell::Cell;
use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::registry::{json_escape, registry};
use crate::trace::{FieldValue, TraceEvent, TraceKind};

/// Records retained per thread before the oldest is dropped.
pub const DEFAULT_CAPACITY: usize = 2048;

/// One retained trace record, stamped with its capture time.
#[derive(Debug, Clone)]
pub struct FlightRecord {
    /// The record itself (ids, kind, name, fields, depth).
    pub event: TraceEvent,
    /// Microseconds since the recorder was installed.
    pub t_us: u64,
}

/// A thread's buffers: the live FIFO ring plus the `kept` overflow area
/// that receives evicted records belonging to retained traces. One mutex
/// covers both — the eviction decision must see them consistently.
#[derive(Default)]
struct RingBufs {
    live: VecDeque<FlightRecord>,
    kept: VecDeque<FlightRecord>,
}

/// A thread's ring. Leaked on first record from that thread — rings must
/// outlive their thread (the panic hook dumps them post-mortem), there is
/// exactly one per thread ever, and a `&'static` keeps the hot path free
/// of `Arc` reference-count traffic.
type Ring = &'static Mutex<RingBufs>;

struct ThreadRing {
    label: String,
    ring: Ring,
}

struct Recorder {
    epoch: Instant,
    capacity: usize,
    /// Every thread's ring, appended on first record from that thread.
    /// Locked only to register a thread or to dump.
    threads: Mutex<Vec<ThreadRing>>,
    /// `telemetry.flight.dropped_events`, resolved once — a full ring hits
    /// the overflow branch on every record, which must not pay a registry
    /// lookup each time.
    dropped: std::sync::Arc<crate::Counter>,
}

static RECORDER: OnceLock<Recorder> = OnceLock::new();
static FLIGHT_ON: AtomicBool = AtomicBool::new(false);
static THREAD_SEQ: AtomicUsize = AtomicUsize::new(0);
static DUMP_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
static PANIC_HOOK: OnceLock<()> = OnceLock::new();

/// Trace ids flagged for retention, oldest first (bounded FIFO).
static RETAINED: Mutex<VecDeque<u64>> = Mutex::new(VecDeque::new());
/// Fast-path guard: true iff [`RETAINED`] is non-empty, so the common
/// overflow branch (nothing retained) pays one relaxed load, not a lock.
static ANY_RETAINED: AtomicBool = AtomicBool::new(false);

/// Retained trace ids kept at once; the oldest flag is forgotten first.
/// Records already moved to `kept` buffers stay there regardless.
pub const RETAINED_TRACE_CAPACITY: usize = 256;

thread_local! {
    static MY_RING: Cell<Option<Ring>> = const { Cell::new(None) };
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Turns the flight recorder on (idempotent). From here on every span
/// enter/exit and event is retained in the calling thread's ring — and
/// [`crate::trace::enabled`] reports true, so instrumented code starts
/// building fields.
pub fn install() {
    RECORDER.get_or_init(|| Recorder {
        epoch: Instant::now(),
        capacity: DEFAULT_CAPACITY,
        threads: Mutex::new(Vec::new()),
        dropped: registry().counter("telemetry.flight.dropped_events"),
    });
    FLIGHT_ON.store(true, Ordering::Release);
    crate::trace::set_flight_active(true);
}

/// True while the recorder is on.
pub fn installed() -> bool {
    FLIGHT_ON.load(Ordering::Relaxed)
}

/// Turns the recorder off. Retained records stay dumpable until
/// [`clear`].
pub fn uninstall() {
    crate::trace::set_flight_active(false);
    FLIGHT_ON.store(false, Ordering::Release);
}

/// Empties every thread's ring — live and kept records, not
/// registrations. Retention flags survive; see [`clear_retained`].
pub fn clear() {
    if let Some(rec) = RECORDER.get() {
        for t in lock(&rec.threads).iter() {
            let mut bufs = lock(t.ring);
            bufs.live.clear();
            bufs.kept.clear();
        }
    }
}

/// Flags a trace for tail retention: from now on, records of this trace
/// evicted from any thread's live ring move to that thread's `kept`
/// buffer instead of being dropped. Bounded at
/// [`RETAINED_TRACE_CAPACITY`] flags (oldest forgotten first); a zero
/// trace id (untraced record) is ignored.
pub fn retain_trace(trace_id: u64) {
    if trace_id == 0 {
        return;
    }
    let mut set = lock(&RETAINED);
    if set.contains(&trace_id) {
        return;
    }
    if set.len() >= RETAINED_TRACE_CAPACITY {
        set.pop_front();
    }
    set.push_back(trace_id);
    ANY_RETAINED.store(true, Ordering::Release);
}

/// True if `trace_id` is currently flagged for retention.
pub fn is_retained(trace_id: u64) -> bool {
    ANY_RETAINED.load(Ordering::Relaxed) && lock(&RETAINED).contains(&trace_id)
}

/// Every currently flagged trace id, oldest first.
pub fn retained_traces() -> Vec<u64> {
    lock(&RETAINED).iter().copied().collect()
}

/// Drops every retention flag (kept records stay until [`clear`]).
pub fn clear_retained() {
    let mut set = lock(&RETAINED);
    set.clear();
    ANY_RETAINED.store(false, Ordering::Release);
}

/// One thread's ring occupancy, for retention-pressure dashboards.
#[derive(Debug, Clone)]
pub struct ThreadOccupancy {
    /// Thread label (name, or `thread-N`).
    pub thread: String,
    /// Records in the live FIFO ring.
    pub live: usize,
    /// Evicted records held because their trace is retained.
    pub kept: usize,
    /// Live-ring capacity (kept has the same bound).
    pub capacity: usize,
}

/// Per-thread ring occupancy, registration order.
pub fn occupancy() -> Vec<ThreadOccupancy> {
    let mut out = Vec::new();
    if let Some(rec) = RECORDER.get() {
        for t in lock(&rec.threads).iter() {
            let bufs = lock(t.ring);
            out.push(ThreadOccupancy {
                thread: t.label.clone(),
                live: bufs.live.len(),
                kept: bufs.kept.len(),
                capacity: rec.capacity,
            });
        }
    }
    out
}

/// First record from a thread: leak its ring and register it for dumps.
#[cold]
fn register_ring(rec: &Recorder) -> Ring {
    let ring: Ring = Box::leak(Box::new(Mutex::new(RingBufs::default())));
    let label = std::thread::current()
        .name()
        .map(str::to_owned)
        .unwrap_or_else(|| format!("thread-{}", THREAD_SEQ.fetch_add(1, Ordering::Relaxed)));
    lock(&rec.threads).push(ThreadRing { label, ring });
    ring
}

/// Appends one record to the calling thread's ring. Called by the trace
/// dispatcher with ownership of the event — the common path takes one
/// uncontended mutex and does no allocation beyond ring growth.
pub(crate) fn record(event: TraceEvent) {
    if !FLIGHT_ON.load(Ordering::Relaxed) {
        return;
    }
    let Some(rec) = RECORDER.get() else {
        return;
    };
    let t_us = rec.epoch.elapsed().as_micros() as u64;
    let ring = MY_RING.with(|cell| match cell.get() {
        Some(r) => r,
        None => {
            let r = register_ring(rec);
            cell.set(Some(r));
            r
        }
    });
    let mut bufs = lock(ring);
    if bufs.live.len() >= rec.capacity {
        let evicted = bufs.live.pop_front().expect("full ring is non-empty");
        // Tail retention: an evicted record whose trace was flagged moves
        // to `kept` rather than dropping. The guard keeps the common case
        // (nothing retained) at one relaxed load.
        if ANY_RETAINED.load(Ordering::Relaxed) && is_retained(evicted.event.trace_id) {
            if bufs.kept.len() >= rec.capacity {
                bufs.kept.pop_front();
                rec.dropped.inc();
            }
            bufs.kept.push_back(evicted);
        } else {
            rec.dropped.inc();
        }
    }
    bufs.live.push_back(FlightRecord { event, t_us });
}

/// Serializes every thread's ring as JSON. The format is deliberately
/// line-oriented — one event object per line — so
/// [`TraceAssembler::add_flight_json`](crate::context::TraceAssembler::add_flight_json)
/// can parse it without a general JSON parser, and a truncated file
/// (crash mid-write) still yields every complete line. Ids are hex
/// strings to dodge 64-bit precision loss in consumers that read JSON
/// numbers as doubles.
pub fn dump_json() -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("\"pid\":{},\n", std::process::id()));
    out.push_str(&format!(
        "\"dropped\":{},\n",
        registry().counter("telemetry.flight.dropped_events").get()
    ));
    let retained = retained_traces();
    if !retained.is_empty() {
        out.push_str("\"retained\":[");
        for (i, id) in retained.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{id:x}\""));
        }
        out.push_str("],\n");
    }
    out.push_str("\"threads\":[\n");
    if let Some(rec) = RECORDER.get() {
        let threads = lock(&rec.threads);
        for (ti, t) in threads.iter().enumerate() {
            out.push_str(&format!("{{\"thread\":\"{}\",\n", json_escape(&t.label)));
            out.push_str("\"events\":[\n");
            let bufs = lock(t.ring);
            // Kept (retained-trace) records first: they are the oldest.
            let total = bufs.kept.len() + bufs.live.len();
            for (ei, r) in bufs.kept.iter().chain(bufs.live.iter()).enumerate() {
                write_record(&mut out, r);
                out.push_str(if ei + 1 < total { ",\n" } else { "\n" });
            }
            out.push_str("]}");
            out.push_str(if ti + 1 < threads.len() { ",\n" } else { "\n" });
        }
    }
    out.push_str("]}\n");
    out
}

fn write_record(out: &mut String, r: &FlightRecord) {
    let e = &r.event;
    let (kind, elapsed) = match e.kind {
        TraceKind::SpanEnter => ("enter", None),
        TraceKind::SpanExit { elapsed_us } => ("exit", Some(elapsed_us)),
        TraceKind::Event => ("event", None),
    };
    out.push_str(&format!(
        "{{\"kind\":\"{kind}\",\"name\":\"{}\",\"trace\":\"{:x}\",\"span\":\"{:x}\",\"parent\":\"{:x}\",\"depth\":{},\"t_us\":{}",
        json_escape(e.name),
        e.trace_id,
        e.span_id,
        e.parent_span_id,
        e.depth,
        r.t_us,
    ));
    if let Some(us) = elapsed {
        out.push_str(&format!(",\"elapsed_us\":{us}"));
    }
    if !e.fields.is_empty() {
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in e.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let rendered = match v {
                FieldValue::Str(s) => format!("\"{}\"", json_escape(s)),
                FieldValue::F64(f) if !f.is_finite() => format!("\"{f}\""),
                other => format!("\"{other}\""),
            };
            out.push_str(&format!("\"{}\":{rendered}", json_escape(k)));
        }
        out.push('}');
    }
    out.push('}');
}

/// Writes [`dump_json`] to `path` (atomically enough for forensics:
/// create + write + flush).
pub fn dump_to(path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(dump_json().as_bytes())?;
    f.flush()
}

/// Overrides where the panic hook writes its dump (default: the
/// `ACC_FLIGHT_DIR` environment variable, then the current directory).
/// A process-global setting, safe to call from tests running in
/// parallel — unlike mutating the environment.
pub fn set_dump_dir(dir: impl Into<PathBuf>) {
    *lock(&DUMP_DIR) = Some(dir.into());
}

fn dump_path() -> PathBuf {
    let dir = lock(&DUMP_DIR)
        .clone()
        .or_else(|| std::env::var_os("ACC_FLIGHT_DIR").map(PathBuf::from))
        .unwrap_or_else(|| PathBuf::from("."));
    dir.join(format!("flight-{}.json", std::process::id()))
}

/// Installs a panic hook (once per process; chains the previous hook)
/// that writes the flight dump to `flight-<pid>.json` whenever any
/// thread panics while the recorder is on — so a crash leaves its last
/// seconds of trace on disk.
pub fn install_panic_hook() {
    PANIC_HOOK.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if installed() {
                let path = dump_path();
                if dump_to(&path).is_ok() {
                    eprintln!("[flight] wrote {}", path.display());
                }
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::TraceAssembler;
    use crate::TEST_EXCLUSIVE as EXCLUSIVE;

    #[test]
    fn records_and_dumps_per_thread() {
        let _guard = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
        install();
        clear();
        {
            let _span = crate::span!("flight.main", job = "j\"1");
            crate::event!("flight.tick", n = 3u64);
        }
        std::thread::Builder::new()
            .name("flight-side".into())
            .spawn(|| {
                let _span = crate::span!("flight.side");
            })
            .unwrap()
            .join()
            .unwrap();
        let dump = dump_json();
        uninstall();

        let mut asm = TraceAssembler::new();
        let added = asm.add_flight_json("me", &dump);
        assert!(added >= 2, "expected both spans in dump:\n{dump}");
        assert!(asm.find("flight.main").is_some());
        let side = asm.find("flight.side").unwrap();
        assert_eq!(side.thread, "flight-side");
        assert!(dump.contains("j\\\"1"), "field string escaped: {dump}");
        clear();
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let _guard = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
        install();
        clear();
        let dropped = registry().counter("telemetry.flight.dropped_events");
        let before = dropped.get();
        for _ in 0..(DEFAULT_CAPACITY + 10) {
            crate::event!("flight.spam");
        }
        uninstall();
        let rec = RECORDER.get().unwrap();
        let my_len = MY_RING.with(|c| c.get().map(|r| lock(r).live.len()).unwrap_or_default());
        assert!(my_len <= rec.capacity);
        assert!(
            dropped.get() >= before + 10,
            "dropped counter must move on overflow"
        );
        clear();
    }

    #[test]
    fn retained_trace_survives_overflow_while_others_age_out() {
        let _guard = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
        install();
        clear();
        clear_retained();

        // A "slow task" trace: a span plus an event, then flag it.
        let slow = crate::TraceContext::root();
        {
            let _ctx = slow.attach();
            let _span = crate::span!("retained.task");
            crate::event!("retained.tick");
            // A measurable duration, so the exit record folds a non-zero
            // elapsed_us into the assembled span.
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        retain_trace(slow.trace_id);
        assert!(is_retained(slow.trace_id));
        assert_eq!(retained_traces(), vec![slow.trace_id]);

        // A "fast task" trace that is *not* flagged.
        let fast = crate::TraceContext::root();
        {
            let _ctx = fast.attach();
            let _span = crate::span!("forgotten.task");
        }

        // Spam the ring far past capacity: both traces get evicted, but
        // the retained one must land in `kept`.
        for _ in 0..(DEFAULT_CAPACITY * 2) {
            crate::event!("flight.noise");
        }
        uninstall();

        let occ = occupancy();
        let me = std::thread::current().name().map(str::to_owned);
        let mine = occ
            .iter()
            .find(|o| Some(&o.thread) == me.as_ref())
            .expect("this thread's ring is registered");
        assert!(mine.kept >= 3, "retained records kept: {mine:?}");
        assert!(mine.live <= mine.capacity);

        let dump = dump_json();
        assert!(
            dump.contains(&format!("{:x}", slow.trace_id)),
            "retained trace in dump"
        );
        assert!(
            dump.contains(&format!("\"retained\":[\"{:x}\"]", slow.trace_id)),
            "retained ids listed in dump header:\n{}",
            &dump[..200.min(dump.len())]
        );
        assert!(
            !dump.contains("forgotten.task"),
            "unflagged trace must age out"
        );
        let mut asm = crate::context::TraceAssembler::new();
        asm.add_flight_json("me", &dump);
        let spans = asm.spans(slow.trace_id);
        assert_eq!(spans.len(), 1, "full retained span detail survives");
        assert_eq!(spans[0].name, "retained.task");
        assert!(spans[0].elapsed_us > 0, "exit record folded a duration");

        clear();
        clear_retained();
        assert!(!is_retained(slow.trace_id));
    }

    #[test]
    fn retained_set_is_bounded_and_ignores_zero() {
        let _guard = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
        clear_retained();
        retain_trace(0);
        assert!(retained_traces().is_empty());
        for id in 1..=(RETAINED_TRACE_CAPACITY as u64 + 10) {
            retain_trace(id);
        }
        let ids = retained_traces();
        assert_eq!(ids.len(), RETAINED_TRACE_CAPACITY);
        assert_eq!(ids[0], 11, "oldest flags forgotten first");
        retain_trace(11); // already present: no-op, no reorder
        assert_eq!(retained_traces().len(), RETAINED_TRACE_CAPACITY);
        clear_retained();
    }

    #[test]
    fn dump_without_install_is_valid() {
        // No EXCLUSIVE needed: read-only.
        let dump = dump_json();
        assert!(dump.contains("\"threads\":["));
    }
}
