//! The ray-tracing application as the framework sees it.
//!
//! The master generates one task per image slice and puts them into the
//! space; each worker takes a task, computes the scan lines for its pixels
//! and returns the resultant array of pixel values; the master collects
//! and combines them to compose the image (paper §5.1.2). The input of
//! each task is just the coordinates describing the region of computation;
//! the output is comparatively large — an array of pixel values.

use std::sync::Arc;

use acc_core::{Application, ExecError, TaskEntry, TaskExecutor, TaskSpec};
use acc_tuplespace::{Payload, PayloadError, WireReader, WireWriter};

use super::scene::Scene;
use super::trace::render_strip;

/// The four coordinates describing a task's region of computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripInput {
    /// First scan line of the strip.
    pub y0: u32,
    /// Number of scan lines.
    pub rows: u32,
    /// Image width.
    pub width: u32,
    /// Image height.
    pub height: u32,
}

impl Payload for StripInput {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(self.y0);
        w.put_u32(self.rows);
        w.put_u32(self.width);
        w.put_u32(self.height);
    }

    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        Ok(StripInput {
            y0: r.get_u32()?,
            rows: r.get_u32()?,
            width: r.get_u32()?,
            height: r.get_u32()?,
        })
    }
}

/// A rendered RGB image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    /// `height * width * 3` RGB bytes, row-major.
    pub pixels: Vec<u8>,
}

impl Image {
    /// The RGB triple at `(x, y)`.
    pub fn pixel(&self, x: u32, y: u32) -> [u8; 3] {
        let i = ((y * self.width + x) * 3) as usize;
        [self.pixels[i], self.pixels[i + 1], self.pixels[i + 2]]
    }

    /// Serializes as a binary PPM (P6) file.
    pub fn to_ppm(&self) -> Vec<u8> {
        let mut out = format!("P6\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend_from_slice(&self.pixels);
        out
    }
}

/// The parallel ray-tracing application.
pub struct RayTraceApp {
    scene: Arc<Scene>,
    /// Image width (paper: 600).
    pub width: u32,
    /// Image height (paper: 600).
    pub height: u32,
    /// Scan lines per strip (paper: 25 ⇒ 24 tasks).
    pub strip_rows: u32,
    pixels: Vec<u8>,
    filled: Vec<bool>,
}

impl RayTraceApp {
    /// An app rendering `scene` at the given size and strip height.
    ///
    /// # Panics
    /// If `strip_rows` does not divide `height`.
    pub fn new(scene: Scene, width: u32, height: u32, strip_rows: u32) -> RayTraceApp {
        assert!(
            strip_rows > 0 && height % strip_rows == 0,
            "strip height must divide image height"
        );
        RayTraceApp {
            scene: Arc::new(scene),
            width,
            height,
            strip_rows,
            pixels: vec![0; (width * height * 3) as usize],
            filled: vec![false; (height / strip_rows) as usize],
        }
    }

    /// The paper's configuration: 600×600 plane in 24 slices of 25×600.
    pub fn paper_configuration() -> RayTraceApp {
        RayTraceApp::new(super::scene::benchmark_scene(), 600, 600, 25)
    }

    /// Number of strips (= tasks).
    pub fn strips(&self) -> u32 {
        self.height / self.strip_rows
    }

    /// The strip inputs this app decomposes into.
    pub fn strip_inputs(&self) -> Vec<StripInput> {
        (0..self.strips())
            .map(|strip| StripInput {
                y0: strip * self.strip_rows,
                rows: self.strip_rows,
                width: self.width,
                height: self.height,
            })
            .collect()
    }

    /// The scene being rendered.
    pub fn scene(&self) -> Arc<Scene> {
        self.scene.clone()
    }

    /// The assembled image (valid once every strip has been absorbed).
    pub fn image(&self) -> Option<Image> {
        if self.filled.iter().all(|&f| f) {
            Some(Image {
                width: self.width,
                height: self.height,
                pixels: self.pixels.clone(),
            })
        } else {
            None
        }
    }
}

struct StripExecutor {
    scene: Arc<Scene>,
}

impl TaskExecutor for StripExecutor {
    fn execute(&self, task: &TaskEntry) -> Result<Vec<u8>, ExecError> {
        let input: StripInput = task.input()?;
        Ok(render_strip(
            &self.scene,
            input.y0,
            input.rows,
            input.width,
            input.height,
        ))
    }
}

impl Application for RayTraceApp {
    fn job_name(&self) -> String {
        "ray-tracing".into()
    }

    fn bundle_name(&self) -> String {
        "ray-tracing-worker".into()
    }

    fn bundle_kb(&self) -> usize {
        96 // geometry + shading code
    }

    fn plan(&mut self) -> Vec<TaskSpec> {
        self.strip_inputs()
            .iter()
            .enumerate()
            .map(|(i, input)| TaskSpec::new(i as u64, input))
            .collect()
    }

    fn executor(&self) -> Arc<dyn TaskExecutor> {
        Arc::new(StripExecutor {
            scene: self.scene.clone(),
        })
    }

    fn absorb(&mut self, task_id: u64, payload: &[u8]) -> Result<(), ExecError> {
        let strip = task_id as usize;
        if strip >= self.filled.len() {
            return Err(ExecError::App(format!("strip {strip} out of range")));
        }
        let expected = (self.strip_rows * self.width * 3) as usize;
        if payload.len() != expected {
            return Err(ExecError::App(format!(
                "strip {strip}: {} bytes, expected {expected}",
                payload.len()
            )));
        }
        let offset = strip * expected;
        self.pixels[offset..offset + expected].copy_from_slice(payload);
        self.filled[strip] = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raytrace::scene::benchmark_scene;

    #[test]
    fn strip_input_roundtrip() {
        let input = StripInput {
            y0: 75,
            rows: 25,
            width: 600,
            height: 600,
        };
        assert_eq!(StripInput::from_bytes(&input.to_bytes()).unwrap(), input);
    }

    #[test]
    fn paper_configuration_has_24_tasks() {
        let mut app = RayTraceApp::paper_configuration();
        assert_eq!(app.strips(), 24);
        let specs = app.plan();
        assert_eq!(specs.len(), 24);
        let first = StripInput::from_bytes(&specs[0].payload).unwrap();
        assert_eq!((first.y0, first.rows), (0, 25));
        let last = StripInput::from_bytes(&specs[23].payload).unwrap();
        assert_eq!((last.y0, last.rows), (575, 25));
    }

    #[test]
    fn executor_absorb_assembles_image() {
        let mut app = RayTraceApp::new(benchmark_scene(), 40, 20, 5);
        let exec = app.executor();
        assert!(app.image().is_none());
        for (i, spec) in app.plan().into_iter().enumerate() {
            let entry = TaskEntry::new("ray-tracing", spec.task_id, spec.payload);
            let out = exec.execute(&entry).unwrap();
            app.absorb(i as u64, &out).unwrap();
        }
        let image = app.image().unwrap();
        assert_eq!(image.pixels.len(), 40 * 20 * 3);
        // Matches a direct full render.
        let direct = render_strip(&benchmark_scene(), 0, 20, 40, 20);
        assert_eq!(image.pixels, direct);
    }

    #[test]
    fn absorb_validates_strip_id_and_size() {
        let mut app = RayTraceApp::new(benchmark_scene(), 8, 8, 4);
        assert!(app.absorb(5, &[0; 96]).is_err());
        assert!(app.absorb(0, &[0; 10]).is_err());
        assert!(app.absorb(0, &[0; 8 * 4 * 3]).is_ok());
    }

    #[test]
    #[should_panic(expected = "divide image height")]
    fn bad_strip_height_rejected() {
        RayTraceApp::new(benchmark_scene(), 10, 10, 3);
    }

    #[test]
    fn ppm_header() {
        let image = Image {
            width: 2,
            height: 1,
            pixels: vec![255, 0, 0, 0, 255, 0],
        };
        let ppm = image.to_ppm();
        assert!(ppm.starts_with(b"P6\n2 1\n255\n"));
        assert_eq!(ppm.len(), 11 + 6);
        assert_eq!(image.pixel(1, 0), [0, 255, 0]);
    }
}
