//! Figures 9–11: the adaptation-protocol experiment, as a Criterion
//! benchmark, plus a real-runtime signal round-trip latency measurement.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use acc_core::{client_register, duplex_pair, RuleBaseServer, RuleMessage, Signal, WorkerState};
use acc_sim::{run_adaptation, AppProfile};

/// The virtual-time experiment behind Figs 9–11 (one per application).
fn bench_adaptation_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptation/scripted_run");
    for profile in AppProfile::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(&profile.name),
            &profile,
            |b, profile| {
                b.iter(|| {
                    let report = run_adaptation(profile);
                    assert_eq!(report.signals.len(), 5);
                    report.tasks_done
                });
            },
        );
    }
    group.finish();
}

/// Real-runtime rule-base round trip: signal delivered over an in-process
/// duplex and acknowledged — the floor for "Client Signal" latency.
fn bench_signal_roundtrip(c: &mut Criterion) {
    c.bench_function("adaptation/rulebase_roundtrip", |b| {
        let server = RuleBaseServer::new(Arc::new(|_, _| {}));
        let (client, server_side) = duplex_pair();
        let reg = std::thread::spawn(move || {
            client_register(&client, "bench-worker", Duration::from_secs(5)).map(|id| (client, id))
        });
        let id = server.accept(server_side, Duration::from_secs(5)).unwrap();
        let (client, _) = reg.join().unwrap().unwrap();
        b.iter(|| {
            server.send_signal(id, Signal::Pause);
            let msg = client.recv_timeout(Duration::from_secs(1)).unwrap();
            assert!(matches!(msg, RuleMessage::Signal { .. }));
            client.send(RuleMessage::Ack {
                signal: Signal::Pause,
                new_state: WorkerState::Paused,
            });
        });
    });
}

/// TCP variant of the same round trip (the deployment transport).
fn bench_signal_roundtrip_tcp(c: &mut Criterion) {
    c.bench_function("adaptation/rulebase_roundtrip_tcp", |b| {
        let server = RuleBaseServer::new(Arc::new(|_, _| {}));
        let listener = acc_core::rulebase::tcp::RuleBaseTcpListener::spawn(server.clone()).unwrap();
        let duplex = acc_core::rulebase::tcp::connect(listener.addr()).unwrap();
        let id = client_register(&duplex, "tcp-bench", Duration::from_secs(5)).unwrap();
        // Wait until the server registered the reader pump.
        while server.workers().is_empty() {
            std::thread::sleep(Duration::from_millis(1));
        }
        b.iter(|| {
            server.send_signal(id, Signal::Pause);
            let msg = duplex.recv_timeout(Duration::from_secs(1)).unwrap();
            assert!(matches!(msg, RuleMessage::Signal { .. }));
            duplex.send(RuleMessage::Ack {
                signal: Signal::Pause,
                new_state: WorkerState::Paused,
            });
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets =
    bench_adaptation_runs,
    bench_signal_roundtrip,
    bench_signal_roundtrip_tcp
);
criterion_main!(benches);
