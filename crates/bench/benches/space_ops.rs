//! Micro-benchmarks of the tuple space: the substrate every byte of the
//! framework flows through.
//!
//! The flight recorder is installed for the whole run, as it is in any
//! cluster deployment — these numbers are the space's hot-path cost with
//! the observability plane live.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use acc_tuplespace::{Lease, Space, Template, Tuple};

fn with_flight(c: &mut Criterion) {
    acc_telemetry::flight::install();
    let _ = c;
}

fn task_tuple(id: i64, payload_len: usize) -> Tuple {
    Tuple::build("acc.task")
        .field("job", "bench")
        .field("task_id", id)
        .field("payload", vec![0u8; payload_len])
        .done()
}

fn bench_write_take(c: &mut Criterion) {
    let mut group = c.benchmark_group("space/write_take");
    for payload in [64usize, 4096, 65536] {
        group.throughput(Throughput::Bytes(payload as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(payload),
            &payload,
            |b, &payload| {
                let space = Space::new("bench");
                let template = Template::of_type("acc.task");
                let mut i = 0i64;
                b.iter(|| {
                    space.write(task_tuple(i, payload)).unwrap();
                    i += 1;
                    space.take_if_exists(&template).unwrap().unwrap()
                });
            },
        );
    }
    group.finish();
}

fn bench_read(c: &mut Criterion) {
    c.bench_function("space/read_among_1000", |b| {
        let space = Space::new("bench");
        for i in 0..1000 {
            space.write(task_tuple(i, 64)).unwrap();
        }
        let template = Template::build("acc.task").eq("task_id", 999i64).done();
        b.iter(|| space.read_if_exists(&template).unwrap().unwrap());
    });
}

fn bench_template_match(c: &mut Criterion) {
    c.bench_function("space/template_match", |b| {
        let tuple = task_tuple(42, 256);
        let template = Template::build("acc.task")
            .eq("job", "bench")
            .int_range("task_id", 0, 100)
            .done();
        b.iter(|| template.matches(&tuple));
    });
}

fn bench_transactional_take(c: &mut Criterion) {
    let mut group = c.benchmark_group("space/take_modes");
    group.bench_function("plain", |b| {
        let space = Space::new("bench");
        let template = Template::of_type("acc.task");
        let mut i = 0i64;
        b.iter(|| {
            space.write(task_tuple(i, 256)).unwrap();
            i += 1;
            space.take_if_exists(&template).unwrap().unwrap()
        });
    });
    group.bench_function("transactional", |b| {
        let space = Space::new("bench");
        let template = Template::of_type("acc.task");
        let mut i = 0i64;
        b.iter(|| {
            space.write(task_tuple(i, 256)).unwrap();
            i += 1;
            let txn = space.txn().unwrap();
            let got = txn.take_if_exists(&template).unwrap().unwrap();
            txn.commit().unwrap();
            got
        });
    });
    group.finish();
}

fn bench_notify_dispatch(c: &mut Criterion) {
    c.bench_function("space/write_with_10_registrations", |b| {
        let space = Space::new("bench");
        for i in 0..10i64 {
            space.notify(
                Template::build("acc.task").eq("task_id", i).done(),
                Box::new(|_| {}),
            );
        }
        let mut i = 0i64;
        let template = Template::of_type("acc.task");
        b.iter(|| {
            space.write(task_tuple(i % 10, 64)).unwrap();
            i += 1;
            space.take_if_exists(&template).unwrap()
        });
    });
}

fn bench_leased_writes_and_sweep(c: &mut Criterion) {
    c.bench_function("space/leased_write_sweep_100", |b| {
        let space = Space::new("bench");
        b.iter(|| {
            for i in 0..100 {
                space
                    .write_leased(task_tuple(i, 64), Lease::for_millis(0))
                    .unwrap();
            }
            space.sweep()
        });
    });
}

/// One producer feeding 1/4/16 long-lived takers, each taker draining its
/// own tuple type with a blocking `take`. Takers park between tasks, so
/// the wakeup policy dominates: a store that wakes every waiter per write
/// (notify_all on one global condvar) pays O(takers) spurious wakeups and
/// rescans per tuple, while per-type shards with targeted wakeups pay
/// O(1). Taker threads persist across iterations so thread spawn/join
/// cost (~1ms for 16 threads) stays out of the measurement.
fn bench_concurrent_takers(c: &mut Criterion) {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    const OPS: usize = 2048;
    let mut group = c.benchmark_group("space/concurrent_takers");
    for takers in [1usize, 4, 16] {
        group.throughput(Throughput::Elements(OPS as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(takers),
            &takers,
            |b, &takers| {
                let space = Space::new("bench");
                let consumed = Arc::new(AtomicUsize::new(0));
                let handles: Vec<_> = (0..takers)
                    .map(|t| {
                        let space = space.clone();
                        let consumed = consumed.clone();
                        std::thread::spawn(move || {
                            let template = Template::build(format!("acc.task.{t}"))
                                .eq("job", "bench")
                                .done();
                            // Drain until the space closes at teardown.
                            while let Ok(Some(_)) = space.take(&template, None) {
                                consumed.fetch_add(1, Ordering::Relaxed);
                            }
                        })
                    })
                    .collect();
                let types: Vec<String> = (0..takers).map(|t| format!("acc.task.{t}")).collect();
                b.iter(|| {
                    consumed.store(0, Ordering::Relaxed);
                    for i in 0..OPS {
                        let t = i % takers;
                        space
                            .write(
                                Tuple::build(types[t].as_str())
                                    .field("job", "bench")
                                    .field("task_id", (i / takers) as i64)
                                    .done(),
                            )
                            .unwrap();
                    }
                    while consumed.load(Ordering::Relaxed) < OPS {
                        std::thread::yield_now();
                    }
                });
                space.close();
                for h in handles {
                    h.join().unwrap();
                }
            },
        );
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets =
    with_flight,
    bench_write_take,
    bench_read,
    bench_template_match,
    bench_transactional_take,
    bench_notify_dispatch,
    bench_leased_writes_and_sweep,
    bench_concurrent_takers
);
criterion_main!(benches);
