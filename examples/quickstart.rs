//! Quickstart: the smallest complete use of the framework.
//!
//! Defines a trivial bag-of-tasks application (sum the squares of 0..N),
//! brings up an adaptive cluster with three simulated worker nodes, runs
//! the job through the master module, and prints the phase timings the
//! paper's evaluation reports.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;
use std::time::Duration;

use adaptive_spaces::cluster::NodeSpec;
use adaptive_spaces::framework::{
    Application, ClusterBuilder, ExecError, FrameworkConfig, TaskEntry, TaskExecutor, TaskSpec,
};
use adaptive_spaces::space::Payload;

/// The application: each task squares one integer; the master sums them.
struct SumSquares {
    n: u64,
    total: u64,
}

struct SquareExecutor;

impl TaskExecutor for SquareExecutor {
    fn execute(&self, task: &TaskEntry) -> Result<Vec<u8>, ExecError> {
        let x: u64 = task.input()?;
        Ok((x * x).to_bytes())
    }
}

impl Application for SumSquares {
    fn job_name(&self) -> String {
        "sum-squares".into()
    }

    fn bundle_name(&self) -> String {
        "sum-squares-worker".into()
    }

    fn plan(&mut self) -> Vec<TaskSpec> {
        (0..self.n).map(|i| TaskSpec::new(i, &i)).collect()
    }

    fn executor(&self) -> Arc<dyn TaskExecutor> {
        Arc::new(SquareExecutor)
    }

    fn absorb(&mut self, _task_id: u64, payload: &[u8]) -> Result<(), ExecError> {
        self.total += u64::from_bytes(payload).map_err(ExecError::Decode)?;
        Ok(())
    }
}

fn main() {
    // 1. Bring the cluster up: space + federation + network management.
    let config = FrameworkConfig {
        poll_interval: Duration::from_millis(20),
        ..FrameworkConfig::default()
    };
    let mut cluster = ClusterBuilder::new(config)
        .space_name("quickstart-space")
        .build();

    // 2. Install the application (publishes its code bundle) and add
    //    worker nodes. The inference engine will Start them when their
    //    nodes are idle.
    let mut app = SumSquares { n: 64, total: 0 };
    cluster.install(&app);
    for i in 0..3 {
        cluster.add_worker(NodeSpec::new(format!("worker-{i}"), 800, 256));
    }

    // 3. Run the job through the master module.
    let report = cluster.run(&mut app);

    println!("sum of squares 0..{} = {}", app.n, app.total);
    println!(
        "expected                 = {}",
        (0..app.n).map(|i| i * i).sum::<u64>()
    );
    println!();
    println!("tasks planned        : {}", report.times.tasks);
    println!("results collected    : {}", report.results_collected);
    println!(
        "task planning time   : {:8.2} ms",
        report.times.task_planning_ms
    );
    println!(
        "task aggregation time: {:8.2} ms",
        report.times.task_aggregation_ms
    );
    println!(
        "max worker time      : {:8.2} ms",
        report.times.max_worker_ms
    );
    println!("parallel time        : {:8.2} ms", report.times.parallel_ms);
    for worker in cluster.workers() {
        println!(
            "  {}: {} tasks, final state {}",
            worker.name(),
            worker.tasks_done(),
            worker.state()
        );
    }
    cluster.shutdown();

    // 4. Everything above was also recorded in the global telemetry
    //    registry; dump it in text exposition format.
    println!();
    println!("--- telemetry ---");
    print!("{}", adaptive_spaces::telemetry::registry().render_text());
}
