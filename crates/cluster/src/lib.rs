//! # acc-cluster
//!
//! The cluster-node model: heterogeneous machine specs, a CPU meter that
//! blends framework work with background (interactive-user) load, a usage
//! history recorder, and the paper's two synthetic load simulators
//! (§5.2.2): *load simulator 1* raises worker CPU to 30–50% with scripted
//! RTP/HTTP/multimedia traffic patterns; *load simulator 2* pegs the CPU at
//! 100%.
//!
//! Nodes here are models, not OS processes: the SNMP agent on each node
//! exports [`Node::cpu_load`] as `hrProcessorLoad`, which is exactly the
//! parameter the paper's monitoring agent polls.

#![warn(missing_docs)]

mod loadgen;
mod meter;
mod node;
pub mod observer;
pub mod profiler;
mod testbeds;

pub use loadgen::{LoadGenerator, LoadPhase, LoadTrace, TrafficKind};
pub use meter::{LoadMix, UsageHistory, UsagePoint};
pub use node::{Node, NodeSpec};
pub use observer::{
    jittered_interval, metrics_template, ClusterObserver, DecisionInput, MetricsReport,
    ObserverConfig, RawSamples, TaskTiming, METRICS_TYPE,
};
pub use profiler::{JobProfiler, JobRecorder};
pub use testbeds::{option_pricing_testbed, ray_tracing_testbed, Testbed, MASTER_SPEC};
