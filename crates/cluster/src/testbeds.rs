//! The paper's experimental testbeds (§5).
//!
//! * Ray tracing and web-page pre-fetching: a five-PC cluster of 800 MHz
//!   Pentium III machines with 256 MB RAM.
//! * Option pricing: a thirteen-PC cluster of 300 MHz machines with 64 MB
//!   RAM.
//! * In both cases the master (which hosts the memory-hungry Jini
//!   infrastructure) runs on an 800 MHz / 256 MB machine.

use crate::node::NodeSpec;

/// The master machine used for every experiment: 800 MHz PIII, 256 MB.
pub const MASTER_SPEC: (u32, u32) = (800, 256);

/// A named cluster configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Testbed {
    /// Human-readable label.
    pub name: String,
    /// The master node's spec.
    pub master: NodeSpec,
    /// Worker node specs.
    pub workers: Vec<NodeSpec>,
}

impl Testbed {
    /// Number of worker nodes.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// A copy of this testbed truncated to the first `n` workers — how the
    /// scalability experiments sweep worker counts.
    pub fn with_workers(&self, n: usize) -> Testbed {
        Testbed {
            name: format!("{}[{n}]", self.name),
            master: self.master.clone(),
            workers: self.workers.iter().take(n).cloned().collect(),
        }
    }
}

fn master() -> NodeSpec {
    NodeSpec::new("master", MASTER_SPEC.0, MASTER_SPEC.1)
}

/// The 5 × 800 MHz / 256 MB cluster used for ray tracing and pre-fetching.
pub fn ray_tracing_testbed() -> Testbed {
    Testbed {
        name: "5x800MHz".into(),
        master: master(),
        workers: (1..=5)
            .map(|i| NodeSpec::new(format!("w{i:02}"), 800, 256))
            .collect(),
    }
}

/// The 13 × 300 MHz / 64 MB cluster used for option pricing.
pub fn option_pricing_testbed() -> Testbed {
    Testbed {
        name: "13x300MHz".into(),
        master: master(),
        workers: (1..=13)
            .map(|i| NodeSpec::new(format!("w{i:02}"), 300, 64))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_shapes_match_the_paper() {
        let rt = ray_tracing_testbed();
        assert_eq!(rt.worker_count(), 5);
        assert!(rt
            .workers
            .iter()
            .all(|w| w.speed_mhz == 800 && w.memory_mb == 256));

        let op = option_pricing_testbed();
        assert_eq!(op.worker_count(), 13);
        assert!(op
            .workers
            .iter()
            .all(|w| w.speed_mhz == 300 && w.memory_mb == 64));

        // The master is always the fast machine (Jini is memory-hungry).
        assert_eq!(op.master.speed_mhz, 800);
        assert_eq!(op.master.memory_mb, 256);
    }

    #[test]
    fn with_workers_truncates() {
        let tb = option_pricing_testbed().with_workers(4);
        assert_eq!(tb.worker_count(), 4);
        assert_eq!(tb.workers[0].name, "w01");
        assert_eq!(tb.workers[3].name, "w04");
    }

    #[test]
    fn worker_names_unique() {
        let tb = option_pricing_testbed();
        let names: std::collections::HashSet<_> =
            tb.workers.iter().map(|w| w.name.clone()).collect();
        assert_eq!(names.len(), tb.worker_count());
    }
}
