//! Binary payload codec.
//!
//! JavaSpaces requires entries crossing the space to be serializable; the
//! Rust analogue is the [`Payload`] trait, a small hand-rolled binary codec
//! over [`bytes`]. Application task bodies implement `Payload` and travel
//! through the space as `Value::Bytes` fields, so the space itself stays
//! application-agnostic — the separation of concerns §3 of the paper credits
//! to JavaSpaces.
//!
//! All integers are little-endian. Strings and byte blobs are length-prefixed
//! with a `u32`.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// Errors raised while decoding a payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PayloadError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// A length prefix or tag had an impossible value.
    Corrupt(&'static str),
}

impl fmt::Display for PayloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PayloadError::Truncated => write!(f, "payload truncated"),
            PayloadError::Corrupt(what) => write!(f, "payload corrupt: {what}"),
        }
    }
}

impl std::error::Error for PayloadError {}

/// Types that can be serialized into a space entry and back.
pub trait Payload: Sized {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut WireWriter);
    /// Decodes a value from the front of `r`.
    fn decode(r: &mut WireReader) -> Result<Self, PayloadError>;

    /// Convenience: encode to a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.into_vec()
    }

    /// Convenience: decode from a byte slice, requiring full consumption.
    fn from_bytes(bytes: &[u8]) -> Result<Self, PayloadError> {
        let mut r = WireReader::new(Bytes::copy_from_slice(bytes));
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(PayloadError::Corrupt("trailing bytes"));
        }
        Ok(v)
    }
}

/// Decodes one full frame out of a ref-counted buffer, threading a
/// [`NameInterner`] through the decode so recurring field and type names
/// resolve to shared `Arc<str>`s instead of fresh allocations.
///
/// This is the zero-copy sibling of [`Payload::from_bytes`]: `frame` is
/// consumed by reference count, not copied, so `Bytes`-backed values in
/// the decoded payload alias the frame's allocation. The interner is
/// borrowed for the duration of the decode and handed back afterwards,
/// letting a connection reuse one cache across its whole lifetime.
pub fn decode_frame<T: Payload>(
    frame: Bytes,
    interner: &mut NameInterner,
) -> Result<T, PayloadError> {
    let mut r = WireReader::with_interner(frame, std::mem::take(interner));
    let out = T::decode(&mut r);
    let trailing = r.remaining();
    if let Some(cache) = r.into_interner() {
        *interner = cache;
    }
    let v = out?;
    if trailing != 0 {
        return Err(PayloadError::Corrupt("trailing bytes"));
    }
    Ok(v)
}

/// A bounded cache of recurring wire names (tuple field names, type
/// names).
///
/// Task tuples repeat the same handful of names millions of times; the
/// interner turns each repeat into an `Arc` refcount bump instead of a
/// heap allocation. Bounded on both entry count and name length so a
/// hostile peer streaming unique names cannot grow it without limit —
/// once full, unseen names simply decode unshared.
#[derive(Debug, Default)]
pub struct NameInterner {
    set: HashSet<Arc<str>>,
}

impl NameInterner {
    /// Entry cap; past it, new names are no longer cached.
    const MAX_ENTRIES: usize = 256;
    /// Names longer than this are never cached (they are almost
    /// certainly data, not schema).
    const MAX_NAME_LEN: usize = 64;

    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cached name count.
    pub fn len(&self) -> usize {
        self.set.len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.set.is_empty()
    }

    /// The shared `Arc<str>` for `name`, caching it when within bounds.
    pub fn intern(&mut self, name: &str) -> Arc<str> {
        if let Some(hit) = self.set.get(name) {
            return hit.clone();
        }
        let arc: Arc<str> = Arc::from(name);
        if name.len() <= Self::MAX_NAME_LEN && self.set.len() < Self::MAX_ENTRIES {
            self.set.insert(arc.clone());
        }
        arc
    }
}

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: BytesMut::with_capacity(cap),
        }
    }

    /// Finishes and returns the encoded bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Finishes and returns the backing vector without copying.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf.into_vec()
    }

    /// The bytes written so far, borrowed.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Empties the writer, keeping its allocation (scratch reuse).
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Allocated capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Shrinks the allocation to at most `min_capacity` (high-water decay).
    pub fn shrink_to(&mut self, min_capacity: usize) {
        self.buf.shrink_to(min_capacity);
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Appends an `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }

    /// Appends an `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Appends a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.put_u8(v as u8);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_u32(v.len() as u32);
        self.buf.put_slice(v.as_bytes());
    }

    /// Appends a length-prefixed byte blob.
    pub fn put_blob(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.put_slice(v);
    }

    /// Appends a length-prefixed `f64` slice.
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_u32(v.len() as u32);
        for x in v {
            self.put_f64(*x);
        }
    }

    /// Appends a length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, v: &[u32]) {
        self.put_u32(v.len() as u32);
        for x in v {
            self.put_u32(*x);
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Consuming decoder over a byte buffer.
///
/// The buffer is a ref-counted [`Bytes`], so decoding can hand out
/// zero-copy views of it ([`WireReader::get_bytes`]) that stay valid as
/// long as any view lives. With an attached [`NameInterner`]
/// ([`WireReader::with_interner`] or [`decode_frame`]), recurring names
/// decode to shared `Arc<str>`s.
#[derive(Debug)]
pub struct WireReader {
    buf: Bytes,
    interner: Option<NameInterner>,
}

impl WireReader {
    /// Wraps a buffer for decoding.
    pub fn new(buf: Bytes) -> Self {
        Self {
            buf,
            interner: None,
        }
    }

    /// Wraps a buffer for decoding with a name cache attached; recover it
    /// with [`WireReader::into_interner`] when done.
    pub fn with_interner(buf: Bytes, interner: NameInterner) -> Self {
        Self {
            buf,
            interner: Some(interner),
        }
    }

    /// Takes back the attached name cache, if any.
    pub fn into_interner(self) -> Option<NameInterner> {
        self.interner
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    fn need(&self, n: usize) -> Result<(), PayloadError> {
        if self.buf.remaining() < n {
            Err(PayloadError::Truncated)
        } else {
            Ok(())
        }
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, PayloadError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, PayloadError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, PayloadError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Reads an `i64`.
    pub fn get_i64(&mut self) -> Result<i64, PayloadError> {
        self.need(8)?;
        Ok(self.buf.get_i64_le())
    }

    /// Reads an `f64`.
    pub fn get_f64(&mut self) -> Result<f64, PayloadError> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    /// Reads a bool; only 0 and 1 are legal encodings.
    pub fn get_bool(&mut self) -> Result<bool, PayloadError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(PayloadError::Corrupt("bool tag")),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, PayloadError> {
        let len = self.get_u32()? as usize;
        self.need(len)?;
        let raw = self.buf.split_to(len);
        String::from_utf8(raw.to_vec()).map_err(|_| PayloadError::Corrupt("utf8"))
    }

    /// Reads a length-prefixed byte blob into a fresh vector.
    pub fn get_blob(&mut self) -> Result<Vec<u8>, PayloadError> {
        let len = self.get_u32()? as usize;
        self.need(len)?;
        Ok(self.buf.split_to(len).to_vec())
    }

    /// Reads a length-prefixed byte blob as a zero-copy view of the
    /// underlying frame. The view keeps the whole frame allocation alive
    /// until dropped.
    pub fn get_bytes(&mut self) -> Result<Bytes, PayloadError> {
        let len = self.get_u32()? as usize;
        self.need(len)?;
        Ok(self.buf.split_to(len))
    }

    /// Reads a length-prefixed UTF-8 name as a shared `Arc<str>`,
    /// deduplicated through the attached [`NameInterner`] when present.
    pub fn get_name(&mut self) -> Result<Arc<str>, PayloadError> {
        let len = self.get_u32()? as usize;
        self.need(len)?;
        let s = std::str::from_utf8(&self.buf[..len]).map_err(|_| PayloadError::Corrupt("utf8"))?;
        let name = match &mut self.interner {
            Some(cache) => cache.intern(s),
            None => Arc::from(s),
        };
        self.buf.advance(len);
        Ok(name)
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, PayloadError> {
        let len = self.get_u32()? as usize;
        self.need(len.checked_mul(8).ok_or(PayloadError::Corrupt("length"))?)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.buf.get_f64_le());
        }
        Ok(out)
    }

    /// Reads a length-prefixed `u32` vector.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>, PayloadError> {
        let len = self.get_u32()? as usize;
        self.need(len.checked_mul(4).ok_or(PayloadError::Corrupt("length"))?)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.buf.get_u32_le());
        }
        Ok(out)
    }
}

impl Payload for u32 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(*self);
    }
    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        r.get_u32()
    }
}

impl Payload for u64 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(*self);
    }
    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        r.get_u64()
    }
}

impl Payload for i64 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_i64(*self);
    }
    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        r.get_i64()
    }
}

impl Payload for f64 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_f64(*self);
    }
    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        r.get_f64()
    }
}

impl Payload for String {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(self);
    }
    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        r.get_str()
    }
}

impl Payload for Vec<f64> {
    fn encode(&self, w: &mut WireWriter) {
        w.put_f64_slice(self);
    }
    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        r.get_f64_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Sample {
        id: u32,
        label: String,
        xs: Vec<f64>,
        flag: bool,
    }

    impl Payload for Sample {
        fn encode(&self, w: &mut WireWriter) {
            w.put_u32(self.id);
            w.put_str(&self.label);
            w.put_f64_slice(&self.xs);
            w.put_bool(self.flag);
        }
        fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
            Ok(Sample {
                id: r.get_u32()?,
                label: r.get_str()?,
                xs: r.get_f64_vec()?,
                flag: r.get_bool()?,
            })
        }
    }

    #[test]
    fn struct_roundtrip() {
        let s = Sample {
            id: 9,
            label: "strip-3".into(),
            xs: vec![1.0, -2.5, f64::MAX],
            flag: true,
        };
        let bytes = s.to_bytes();
        assert_eq!(Sample::from_bytes(&bytes).unwrap(), s);
    }

    #[test]
    fn truncated_fails() {
        let s = Sample {
            id: 1,
            label: "x".into(),
            xs: vec![],
            flag: false,
        };
        let bytes = s.to_bytes();
        for cut in 0..bytes.len() {
            assert!(Sample::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 7u32.to_bytes();
        bytes.push(0);
        assert_eq!(
            u32::from_bytes(&bytes),
            Err(PayloadError::Corrupt("trailing bytes"))
        );
    }

    #[test]
    fn bad_bool_tag_rejected() {
        let mut r = WireReader::new(Bytes::from_static(&[2]));
        assert_eq!(r.get_bool(), Err(PayloadError::Corrupt("bool tag")));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = WireWriter::new();
        w.put_u32(2);
        w.put_u8(0xff);
        w.put_u8(0xfe);
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.get_str(), Err(PayloadError::Corrupt("utf8")));
    }

    #[test]
    fn primitive_impls_roundtrip() {
        assert_eq!(u32::from_bytes(&5u32.to_bytes()).unwrap(), 5);
        assert_eq!(u64::from_bytes(&7u64.to_bytes()).unwrap(), 7);
        assert_eq!(i64::from_bytes(&(-3i64).to_bytes()).unwrap(), -3);
        assert_eq!(f64::from_bytes(&1.25f64.to_bytes()).unwrap(), 1.25);
        assert_eq!(
            String::from_bytes(&"hello".to_string().to_bytes()).unwrap(),
            "hello"
        );
        let xs = vec![0.5, 1.5];
        assert_eq!(Vec::<f64>::from_bytes(&xs.to_bytes()).unwrap(), xs);
    }

    #[test]
    fn u32_slice_roundtrip() {
        let mut w = WireWriter::new();
        w.put_u32_slice(&[1, 2, 3]);
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.get_u32_vec().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn get_bytes_is_a_zero_copy_view() {
        let mut w = WireWriter::new();
        w.put_blob(&[9u8; 32]);
        let frame = w.finish();
        let frame_ptr = frame.as_ref().as_ptr();
        let mut r = WireReader::new(frame);
        let view = r.get_bytes().unwrap();
        assert_eq!(view.as_ref(), &[9u8; 32]);
        // The view points into the frame (4 bytes in, past the length
        // prefix) rather than at a copy.
        assert_eq!(view.as_ref().as_ptr(), unsafe { frame_ptr.add(4) });
    }

    #[test]
    fn get_name_interns_repeats() {
        let mut w = WireWriter::new();
        w.put_str("task_id");
        w.put_str("task_id");
        w.put_str("payload");
        let mut r = WireReader::with_interner(w.finish(), NameInterner::new());
        let a = r.get_name().unwrap();
        let b = r.get_name().unwrap();
        let c = r.get_name().unwrap();
        assert!(Arc::ptr_eq(&a, &b), "repeat must share one allocation");
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(&*a, "task_id");
        assert_eq!(&*c, "payload");
        assert_eq!(r.into_interner().unwrap().len(), 2);
    }

    #[test]
    fn interner_is_bounded() {
        let mut cache = NameInterner::new();
        // Oversized names never enter the cache.
        let long = "x".repeat(NameInterner::MAX_NAME_LEN + 1);
        let _ = cache.intern(&long);
        assert!(cache.is_empty());
        // The entry cap holds under a flood of unique names.
        for i in 0..2 * NameInterner::MAX_ENTRIES {
            let _ = cache.intern(&format!("name-{i}"));
        }
        assert_eq!(cache.len(), NameInterner::MAX_ENTRIES);
        // A full cache still hands out correct (uncached) names.
        assert_eq!(&*cache.intern("overflow"), "overflow");
    }

    #[test]
    fn decode_frame_matches_from_bytes_and_rejects_trailing() {
        let s = Sample {
            id: 3,
            label: "frame".into(),
            xs: vec![0.5],
            flag: true,
        };
        let mut bytes = s.to_bytes();
        let mut cache = NameInterner::new();
        let decoded: Sample = decode_frame(Bytes::copy_from_slice(&bytes), &mut cache).unwrap();
        assert_eq!(decoded, s);
        bytes.push(0);
        assert_eq!(
            decode_frame::<Sample>(Bytes::from(bytes), &mut cache),
            Err(PayloadError::Corrupt("trailing bytes"))
        );
    }

    #[test]
    fn writer_scratch_reuse_keeps_capacity() {
        let mut w = WireWriter::with_capacity(128);
        w.put_blob(&[1u8; 100]);
        assert!(w.capacity() >= 128);
        w.clear();
        assert!(w.is_empty());
        assert!(w.capacity() >= 128);
        w.put_u32(7);
        assert_eq!(w.as_slice(), &7u32.to_le_bytes());
        assert_eq!(w.into_vec(), 7u32.to_le_bytes().to_vec());
    }

    #[test]
    fn huge_length_prefix_is_truncation_not_panic() {
        let mut w = WireWriter::new();
        w.put_u32(u32::MAX);
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.get_blob(), Err(PayloadError::Truncated));
        let mut r2 = WireReader::new({
            let mut w = WireWriter::new();
            w.put_u32(u32::MAX);
            w.finish()
        });
        assert!(r2.get_f64_vec().is_err());
    }
}
