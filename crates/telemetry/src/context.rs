//! Distributed trace context: one 64-bit trace id shared by every span a
//! request touches, on any thread or process, plus the [`TraceAssembler`]
//! that stitches per-process flight-recorder dumps back into one tree.
//!
//! A [`TraceContext`] is the pair `(trace_id, span_id)`. Each thread has a
//! *current* context; [`span!`](crate::span) makes the new span a child of
//! the current context (same trace id, fresh span id) and restores the
//! parent on exit. Crossing a boundary — a wire protocol frame, an SNMP
//! community suffix, a task tuple — means serializing the current context
//! on the sending side and [`TraceContext::attach`]ing it on the receiving
//! side, so the receiver's spans join the sender's trace.
//!
//! Ids are random-looking 64-bit values generated without any external
//! RNG: a process-global counter run through a splitmix64 finalizer,
//! seeded from the clock and address-space layout.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::registry::json_unescape;
use crate::trace::{TraceEvent, TraceKind};

/// A propagated trace identity: which trace a unit of work belongs to and
/// which span is its immediate parent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// Shared by every span of one logical request, across threads and
    /// processes. Never zero.
    pub trace_id: u64,
    /// The span the context points at (the parent of whatever adopts the
    /// context). Never zero.
    pub span_id: u64,
}

thread_local! {
    static CURRENT: Cell<Option<TraceContext>> = const { Cell::new(None) };
}

/// Returns a fresh, unique, never-zero 64-bit id.
pub fn fresh_id() -> u64 {
    static COUNTER: OnceLock<AtomicU64> = OnceLock::new();
    let counter = COUNTER.get_or_init(|| {
        // Seed from wall-clock nanoseconds and ASLR so concurrently
        // started processes draw from different sequences.
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        let aslr = &COUNTER as *const _ as u64;
        AtomicU64::new(nanos ^ aslr.rotate_left(32) ^ (std::process::id() as u64) << 17)
    });
    loop {
        let raw = counter.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
        let id = splitmix64(raw);
        if id != 0 {
            return id;
        }
    }
}

/// The splitmix64 finalizer: a cheap bijective mixer, so sequential
/// counter values come out looking uniformly random.
fn splitmix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TraceContext {
    /// Starts a brand-new trace: fresh trace id, fresh span id.
    pub fn root() -> TraceContext {
        TraceContext {
            trace_id: fresh_id(),
            span_id: fresh_id(),
        }
    }

    /// A child context: same trace, fresh span id.
    pub fn child(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: fresh_id(),
        }
    }

    /// The calling thread's current context, if any (set by an enclosing
    /// [`span!`](crate::span) or an [`attach`](TraceContext::attach)).
    pub fn current() -> Option<TraceContext> {
        CURRENT.with(|c| c.get())
    }

    /// Like [`current`](TraceContext::current), but `None` unless tracing
    /// is enabled — the check boundary-crossing code should use, so no
    /// context bytes are built or shipped while tracing is off.
    pub fn current_if_enabled() -> Option<TraceContext> {
        if crate::trace::enabled() {
            TraceContext::current()
        } else {
            None
        }
    }

    /// Makes `self` the calling thread's current context until the guard
    /// drops (which restores the previous context). This is how a receiver
    /// adopts a propagated context: attach, then open spans as usual.
    pub fn attach(self) -> ContextGuard {
        let prev = CURRENT.with(|c| c.replace(Some(self)));
        ContextGuard { prev }
    }

    /// Wire form: 16 bytes, trace id then span id, little endian.
    pub fn to_bytes(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.trace_id.to_le_bytes());
        out[8..].copy_from_slice(&self.span_id.to_le_bytes());
        out
    }

    /// Inverse of [`to_bytes`](TraceContext::to_bytes). `None` when the
    /// slice has the wrong length or either id is zero.
    pub fn from_bytes(bytes: &[u8]) -> Option<TraceContext> {
        if bytes.len() != 16 {
            return None;
        }
        let trace_id = u64::from_le_bytes(bytes[..8].try_into().ok()?);
        let span_id = u64::from_le_bytes(bytes[8..].try_into().ok()?);
        if trace_id == 0 || span_id == 0 {
            return None;
        }
        Some(TraceContext { trace_id, span_id })
    }

    /// Text form `"<trace_hex>:<span_hex>"` — what rides in the SNMP
    /// community suffix.
    pub fn encode(&self) -> String {
        format!("{:x}:{:x}", self.trace_id, self.span_id)
    }

    /// Inverse of [`encode`](TraceContext::encode).
    pub fn parse(text: &str) -> Option<TraceContext> {
        let (t, s) = text.split_once(':')?;
        let trace_id = u64::from_str_radix(t, 16).ok()?;
        let span_id = u64::from_str_radix(s, 16).ok()?;
        if trace_id == 0 || span_id == 0 {
            return None;
        }
        Some(TraceContext { trace_id, span_id })
    }
}

/// Restores the previously current context when dropped. Returned by
/// [`TraceContext::attach`].
#[must_use = "the context detaches when the guard drops; bind it with `let _ctx = ..`"]
#[derive(Debug)]
pub struct ContextGuard {
    prev: Option<TraceContext>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// Sets or clears the thread's current context (span enter/exit path;
/// crate use).
pub(crate) fn set_current(ctx: Option<TraceContext>) {
    CURRENT.with(|c| c.set(ctx));
}

// ---------------------------------------------------------------------
// The assembler: per-process dumps in, one cross-process tree out.
// ---------------------------------------------------------------------

/// One assembled span: where it ran and where it hangs in the trace tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (e.g. `master.dispatch`).
    pub name: String,
    /// Label of the process whose dump contributed the span.
    pub process: String,
    /// Thread label within that process.
    pub thread: String,
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id (`0` = a trace root).
    pub parent_span_id: u64,
    /// Microseconds since the contributing process's telemetry epoch.
    pub t_us: u64,
    /// Span duration in microseconds, folded in from the matching
    /// span-exit record; `0` when the exit was never observed (the span
    /// was still open, or its exit aged out of the ring).
    pub elapsed_us: u64,
}

/// Stitches span records from several processes (live [`TraceEvent`]s or
/// flight-recorder JSON dumps) into per-trace trees, keyed by the trace
/// and span ids every record carries.
#[derive(Debug, Default)]
pub struct TraceAssembler {
    spans: Vec<SpanRecord>,
    by_span: BTreeMap<u64, usize>,
}

impl TraceAssembler {
    /// An empty assembler.
    pub fn new() -> TraceAssembler {
        TraceAssembler::default()
    }

    /// Adds every span-enter record in `events` under the given process
    /// label, folding span-exit records into the matching span's
    /// [`elapsed_us`](SpanRecord::elapsed_us). Duplicate span ids (the
    /// same dump added twice) are ignored. Returns how many spans were
    /// added.
    pub fn add_events(&mut self, process: &str, events: &[TraceEvent]) -> usize {
        let mut added = 0;
        for e in events {
            if e.span_id == 0 {
                continue;
            }
            match e.kind {
                TraceKind::SpanEnter => {
                    added += self.push(SpanRecord {
                        name: e.name.to_owned(),
                        process: process.to_owned(),
                        thread: String::new(),
                        trace_id: e.trace_id,
                        span_id: e.span_id,
                        parent_span_id: e.parent_span_id,
                        t_us: 0,
                        elapsed_us: 0,
                    });
                }
                TraceKind::SpanExit { elapsed_us } => self.set_elapsed(e.span_id, elapsed_us),
                TraceKind::Event => {}
            }
        }
        added
    }

    /// Parses a flight-recorder dump (the `/spans` body or a
    /// `flight-<pid>.json` file) and adds its span-enter records under the
    /// given process label. Returns how many spans were added.
    ///
    /// The dump format is line-oriented by construction — one event object
    /// per line — so this needs no general JSON parser.
    pub fn add_flight_json(&mut self, process: &str, dump: &str) -> usize {
        let mut thread = String::new();
        let mut added = 0;
        for line in dump.lines() {
            let line = line.trim().trim_end_matches(',');
            if let Some(name) = extract_str(line, "thread") {
                thread = name;
                continue;
            }
            match extract_str(line, "kind").as_deref() {
                Some("enter") => {}
                Some("exit") => {
                    // Fold the duration into the already-seen enter record.
                    if let (Some(span_id), Some(elapsed_us)) =
                        (extract_hex(line, "span"), extract_u64(line, "elapsed_us"))
                    {
                        self.set_elapsed(span_id, elapsed_us);
                    }
                    continue;
                }
                _ => continue,
            }
            let (Some(name), Some(trace_id), Some(span_id)) = (
                extract_str(line, "name"),
                extract_hex(line, "trace"),
                extract_hex(line, "span"),
            ) else {
                continue;
            };
            if span_id == 0 {
                continue;
            }
            added += self.push(SpanRecord {
                name,
                process: process.to_owned(),
                thread: thread.clone(),
                trace_id,
                span_id,
                parent_span_id: extract_hex(line, "parent").unwrap_or(0),
                t_us: extract_u64(line, "t_us").unwrap_or(0),
                elapsed_us: 0,
            });
        }
        added
    }

    fn set_elapsed(&mut self, span_id: u64, elapsed_us: u64) {
        if let Some(&i) = self.by_span.get(&span_id) {
            if self.spans[i].elapsed_us == 0 {
                self.spans[i].elapsed_us = elapsed_us;
            }
        }
    }

    fn push(&mut self, record: SpanRecord) -> usize {
        if self.by_span.contains_key(&record.span_id) {
            return 0;
        }
        self.by_span.insert(record.span_id, self.spans.len());
        self.spans.push(record);
        1
    }

    /// All distinct trace ids seen, in first-seen order.
    pub fn traces(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for s in &self.spans {
            if !out.contains(&s.trace_id) {
                out.push(s.trace_id);
            }
        }
        out
    }

    /// Every span of one trace, in insertion order.
    pub fn spans(&self, trace_id: u64) -> Vec<&SpanRecord> {
        self.spans
            .iter()
            .filter(|s| s.trace_id == trace_id)
            .collect()
    }

    /// The first span with the given name, across all traces.
    pub fn find(&self, name: &str) -> Option<&SpanRecord> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// The chain of ancestors of `span_id`, nearest first. Stops at a
    /// trace root or at a parent no contributed dump covered.
    pub fn ancestry(&self, span_id: u64) -> Vec<&SpanRecord> {
        let mut out = Vec::new();
        let mut cursor = self
            .by_span
            .get(&span_id)
            .map(|&i| self.spans[i].parent_span_id)
            .unwrap_or(0);
        while cursor != 0 {
            let Some(&i) = self.by_span.get(&cursor) else {
                break;
            };
            out.push(&self.spans[i]);
            cursor = self.spans[i].parent_span_id;
            if out.len() > self.spans.len() {
                break; // corrupt parent cycle; never loop forever
            }
        }
        out
    }

    /// Spans of one trace whose parent span no contributed dump covers —
    /// the visible stubs of a process that died mid-flight (or whose dump
    /// was never collected). Trace roots (`parent == 0`) are not orphans.
    pub fn orphans(&self, trace_id: u64) -> Vec<&SpanRecord> {
        self.spans(trace_id)
            .into_iter()
            .filter(|s| s.parent_span_id != 0 && !self.by_span.contains_key(&s.parent_span_id))
            .collect()
    }

    /// Human-readable indented tree of one trace, for test failure output
    /// and debugging: `name [process/thread]` per line. Spans whose parent
    /// dump is missing (a worker that died mid-flight) are not silently
    /// promoted to roots: they render under an explicit orphan section so
    /// partial collections stay legible.
    pub fn render_tree(&self, trace_id: u64) -> String {
        let spans = self.spans(trace_id);
        let mut out = String::new();
        for root in spans.iter().filter(|s| s.parent_span_id == 0) {
            self.render_into(root, 0, &spans, &mut out);
        }
        let orphans = self.orphans(trace_id);
        if !orphans.is_empty() {
            out.push_str("-- orphaned spans (parent dump missing) --\n");
            for orphan in orphans {
                self.render_into(orphan, 0, &spans, &mut out);
            }
        }
        out
    }

    fn render_into(&self, node: &SpanRecord, depth: usize, all: &[&SpanRecord], out: &mut String) {
        out.push_str(&"  ".repeat(depth));
        out.push_str(&format!(
            "{} [{}/{}]\n",
            node.name, node.process, node.thread
        ));
        for child in all.iter().filter(|s| s.parent_span_id == node.span_id) {
            self.render_into(child, depth + 1, all, out);
        }
    }
}

fn find_key<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let marker = format!("\"{key}\":");
    let at = line.find(&marker)? + marker.len();
    Some(&line[at..])
}

fn extract_str(line: &str, key: &str) -> Option<String> {
    let rest = find_key(line, key)?.strip_prefix('"')?;
    // Scan to the closing unescaped quote, then unescape.
    let mut escaped = false;
    for (i, ch) in rest.char_indices() {
        match ch {
            '\\' if !escaped => escaped = true,
            '"' if !escaped => return json_unescape(&rest[..i]),
            _ => escaped = false,
        }
    }
    None
}

fn extract_hex(line: &str, key: &str) -> Option<u64> {
    let raw = extract_str(line, key)?;
    u64::from_str_radix(&raw, 16).ok()
}

fn extract_u64(line: &str, key: &str) -> Option<u64> {
    let rest = find_key(line, key)?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_distinct_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = fresh_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate id {id:x}");
        }
    }

    #[test]
    fn bytes_and_text_roundtrip() {
        let ctx = TraceContext::root();
        assert_eq!(TraceContext::from_bytes(&ctx.to_bytes()), Some(ctx));
        assert_eq!(TraceContext::parse(&ctx.encode()), Some(ctx));
        assert_eq!(TraceContext::from_bytes(&[1, 2, 3]), None);
        assert_eq!(TraceContext::from_bytes(&[0u8; 16]), None);
        assert_eq!(TraceContext::parse("nope"), None);
        assert_eq!(TraceContext::parse("0:0"), None);
    }

    #[test]
    fn attach_nests_and_restores() {
        assert_eq!(TraceContext::current(), None);
        let outer = TraceContext::root();
        {
            let _a = outer.attach();
            assert_eq!(TraceContext::current(), Some(outer));
            let inner = outer.child();
            {
                let _b = inner.attach();
                assert_eq!(TraceContext::current(), Some(inner));
            }
            assert_eq!(TraceContext::current(), Some(outer));
        }
        assert_eq!(TraceContext::current(), None);
    }

    #[test]
    fn assembler_builds_ancestry_across_processes() {
        let mut asm = TraceAssembler::new();
        // "Process A": root → child, as live events.
        let root = SpanRecord {
            name: "master.dispatch".into(),
            process: String::new(),
            thread: String::new(),
            trace_id: 7,
            span_id: 100,
            parent_span_id: 0,
            t_us: 0,
            elapsed_us: 0,
        };
        let events = vec![
            TraceEvent {
                kind: TraceKind::SpanEnter,
                name: "master.dispatch",
                fields: vec![],
                depth: 0,
                trace_id: 7,
                span_id: 100,
                parent_span_id: 0,
            },
            TraceEvent {
                kind: TraceKind::SpanEnter,
                name: "remote.take",
                fields: vec![],
                depth: 1,
                trace_id: 7,
                span_id: 101,
                parent_span_id: 100,
            },
        ];
        assert_eq!(asm.add_events("a", &events), 2);
        // "Process B": the server-side handler, as a flight dump line.
        let dump = r#"{"thread":"svc-1"}
{"kind":"enter","name":"space.serve","trace":"7","span":"66","parent":"65","depth":0,"t_us":10}
"#;
        assert_eq!(asm.add_flight_json("b", dump), 1);
        assert_eq!(asm.traces(), vec![7]);
        let take = asm.find("remote.take").unwrap();
        let chain = asm.ancestry(take.span_id);
        assert_eq!(chain.len(), 1);
        assert_eq!(chain[0].name, root.name);
        let serve = asm.find("space.serve").unwrap();
        assert_eq!(serve.process, "b");
        assert_eq!(serve.thread, "svc-1");
        assert_eq!(serve.span_id, 0x66);
        // Re-adding the same dump is a no-op.
        assert_eq!(asm.add_flight_json("b", dump), 0);
        assert!(asm.render_tree(7).contains("remote.take"));
    }

    #[test]
    fn missing_process_dump_yields_orphan_section_not_a_broken_tree() {
        // Master dispatched (root span), a worker picked the task up and
        // died mid-flight: only the worker's *child* spans made it into a
        // dump, the worker.task span that parented them never did.
        let mut asm = TraceAssembler::new();
        let master = r#"{"thread":"main"}
{"kind":"enter","name":"master.dispatch","trace":"9","span":"1","parent":"0","depth":0,"t_us":0}
"#;
        let dead_worker = r#"{"thread":"acc-worker-w0"}
{"kind":"enter","name":"worker.compute","trace":"9","span":"30","parent":"20","depth":1,"t_us":50}
{"kind":"enter","name":"worker.result.write","trace":"9","span":"31","parent":"30","depth":2,"t_us":90}
"#;
        assert_eq!(asm.add_flight_json("master", master), 1);
        assert_eq!(asm.add_flight_json("w0", dead_worker), 2);

        // Stitching still works where it can: ancestry stops cleanly at
        // the missing parent instead of failing or looping.
        let write = asm.find("worker.result.write").unwrap();
        let chain = asm.ancestry(write.span_id);
        assert_eq!(chain.len(), 1);
        assert_eq!(chain[0].name, "worker.compute");

        // The orphan is identified: worker.compute's parent (span 0x20,
        // the worker.task span) is in no dump. Its own child is not an
        // orphan — it hangs off a span we do have.
        let orphans = asm.orphans(9);
        assert_eq!(orphans.len(), 1);
        assert_eq!(orphans[0].name, "worker.compute");

        // The render keeps the true root at the top level and the
        // orphan subtree under an explicit section, fully indented.
        let tree = asm.render_tree(9);
        assert!(tree.starts_with("master.dispatch"), "{tree}");
        assert!(
            tree.contains("orphaned spans (parent dump missing)"),
            "{tree}"
        );
        assert!(tree.contains("worker.compute [w0/acc-worker-w0]"), "{tree}");
        assert!(tree.contains("  worker.result.write"), "{tree}");
    }

    #[test]
    fn complete_trace_renders_without_orphan_section() {
        let mut asm = TraceAssembler::new();
        let dump = r#"{"thread":"t"}
{"kind":"enter","name":"root","trace":"5","span":"1","parent":"0","depth":0,"t_us":0}
{"kind":"enter","name":"leaf","trace":"5","span":"2","parent":"1","depth":1,"t_us":1}
"#;
        assert_eq!(asm.add_flight_json("p", dump), 2);
        assert!(asm.orphans(5).is_empty());
        let tree = asm.render_tree(5);
        assert!(!tree.contains("orphaned spans"), "{tree}");
        assert!(tree.contains("root"), "{tree}");
        assert!(tree.contains("  leaf"), "{tree}");
    }

    #[test]
    fn exit_records_fold_durations_into_spans() {
        let mut asm = TraceAssembler::new();
        let dump = r#"{"thread":"t"}
{"kind":"enter","name":"root","trace":"5","span":"1","parent":"0","depth":0,"t_us":0}
{"kind":"enter","name":"leaf","trace":"5","span":"2","parent":"1","depth":1,"t_us":10}
{"kind":"exit","name":"leaf","trace":"5","span":"2","parent":"1","depth":1,"t_us":40,"elapsed_us":30}
{"kind":"exit","name":"missing","trace":"5","span":"9","parent":"0","depth":0,"t_us":50,"elapsed_us":99}
"#;
        assert_eq!(asm.add_flight_json("p", dump), 2);
        assert_eq!(asm.find("leaf").unwrap().elapsed_us, 30);
        assert_eq!(asm.find("root").unwrap().elapsed_us, 0, "root never exited");

        // Same folding from live events.
        let mut asm2 = TraceAssembler::new();
        let events = vec![
            TraceEvent {
                kind: TraceKind::SpanEnter,
                name: "job",
                fields: vec![],
                depth: 0,
                trace_id: 6,
                span_id: 11,
                parent_span_id: 0,
            },
            TraceEvent {
                kind: TraceKind::SpanExit { elapsed_us: 77 },
                name: "job",
                fields: vec![],
                depth: 0,
                trace_id: 6,
                span_id: 11,
                parent_span_id: 0,
            },
        ];
        assert_eq!(asm2.add_events("p", &events), 1);
        assert_eq!(asm2.find("job").unwrap().elapsed_us, 77);
    }

    #[test]
    fn flight_parser_survives_hostile_names() {
        let mut asm = TraceAssembler::new();
        let dump = r#"{"thread":"we\"ird\\thread"}
{"kind":"enter","name":"x","trace":"1","span":"2","parent":"0","depth":0,"t_us":0}
not json at all
{"kind":"event","name":"ignored","trace":"1","span":"3"}
"#;
        assert_eq!(asm.add_flight_json("p", dump), 1);
        assert_eq!(asm.find("x").unwrap().thread, "we\"ird\\thread");
    }
}
