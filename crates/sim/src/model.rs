//! The simulator's cost model and per-application profiles.
//!
//! Costs are expressed at a *reference* machine speed (the 800 MHz master)
//! and scaled by each node's speed factor. The per-application numbers are
//! calibrated to the paper's observed behaviour:
//!
//! * **option pricing** (Fig. 6) — master task creation is expensive
//!   relative to task compute on the slow 300 MHz workers, so speedup
//!   holds to ~4 workers and then task planning dominates;
//! * **ray tracing** (Fig. 7) — compute-heavy tasks, flat ≈500 ms task
//!   planning, near-linear scaling;
//! * **pre-fetching** (Fig. 8) — cheap planning, modest compute, heavy
//!   result assimilation: task aggregation dominates, scaling stops ≈4.

use acc_cluster::Testbed;

/// Framework-level costs, independent of the application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Reference clock the per-task costs are expressed at (MHz).
    pub reference_mhz: u32,
    /// One space round trip (take or write) as seen by a worker, ms.
    pub space_rtt_ms: f64,
    /// Remote class loading on Start, ms (Resume skips this).
    pub class_load_ms: f64,
    /// Management → worker signal delivery latency, ms.
    pub signal_latency_ms: f64,
    /// SNMP poll interval, ms.
    pub poll_interval_ms: f64,
    /// Threshold hysteresis (consecutive samples before acting).
    pub hysteresis: usize,
    /// Inference-engine load bands (paper: 25 / 50).
    pub thresholds: acc_core::Thresholds,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            reference_mhz: 800,
            space_rtt_ms: 4.0,
            class_load_ms: 350.0,
            signal_latency_ms: 3.0,
            poll_interval_ms: 250.0,
            hysteresis: 1,
            thresholds: acc_core::Thresholds::paper(),
        }
    }
}

/// An application's shape, as the simulator needs it.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Label used in reports.
    pub name: String,
    /// Number of tasks the master plans.
    pub tasks: usize,
    /// Compute work of one task on the reference machine at 100%
    /// availability, ms.
    pub task_work_ms: f64,
    /// Fixed master cost before the first task entry is written, ms.
    pub plan_fixed_ms: f64,
    /// Master cost to create + serialize + write one task entry, ms.
    pub plan_per_task_ms: f64,
    /// Master cost to take + assimilate one result entry, ms.
    pub agg_per_task_ms: f64,
    /// The testbed this application was evaluated on.
    pub testbed: Testbed,
}

impl AppProfile {
    /// Option pricing: 100 subtasks of 100 MC simulations on the 13×300 MHz
    /// cluster (paper §5.1.1, Fig. 6).
    pub fn option_pricing() -> AppProfile {
        AppProfile {
            name: "option-pricing".into(),
            tasks: 100,
            task_work_ms: 140.0,
            plan_fixed_ms: 60.0,
            plan_per_task_ms: 95.0,
            agg_per_task_ms: 12.0,
            testbed: acc_cluster::option_pricing_testbed(),
        }
    }

    /// Ray tracing: 24 strips of 25×600 pixels on the 5×800 MHz cluster
    /// (paper §5.1.2, Fig. 7). Task planning is flat at ≈500 ms.
    pub fn ray_tracing() -> AppProfile {
        AppProfile {
            name: "ray-tracing".into(),
            tasks: 24,
            task_work_ms: 2600.0,
            plan_fixed_ms: 380.0,
            plan_per_task_ms: 5.0,
            agg_per_task_ms: 35.0,
            testbed: acc_cluster::ray_tracing_testbed(),
        }
    }

    /// Pre-fetching: 25 strip tasks on the 5×800 MHz cluster (paper
    /// §5.1.3, Fig. 8). Aggregation (assembling the resultant matrix)
    /// dominates.
    pub fn prefetch() -> AppProfile {
        AppProfile {
            name: "page-prefetch".into(),
            tasks: 25,
            task_work_ms: 220.0,
            plan_fixed_ms: 30.0,
            plan_per_task_ms: 3.0,
            agg_per_task_ms: 56.0,
            testbed: acc_cluster::ray_tracing_testbed(),
        }
    }

    /// All three paper applications.
    pub fn all() -> Vec<AppProfile> {
        vec![
            AppProfile::option_pricing(),
            AppProfile::ray_tracing(),
            AppProfile::prefetch(),
        ]
    }

    /// Total master planning time, ms.
    pub fn planning_ms(&self) -> f64 {
        self.plan_fixed_ms + self.plan_per_task_ms * self.tasks as f64
    }

    /// Serial compute time on one reference-speed worker, ms.
    pub fn serial_compute_ms(&self) -> f64 {
        self.task_work_ms * self.tasks as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_paper_task_counts() {
        assert_eq!(AppProfile::option_pricing().tasks, 100);
        assert_eq!(AppProfile::ray_tracing().tasks, 24);
        assert_eq!(AppProfile::prefetch().tasks, 25);
    }

    #[test]
    fn profiles_reproduce_dominance_relations() {
        // Pricing: planning must be large relative to per-worker compute on
        // the slow testbed once ≥4 workers share the work.
        let pricing = AppProfile::option_pricing();
        let worker_speed = 300.0 / 800.0;
        let compute_4_workers = pricing.serial_compute_ms() / worker_speed / 4.0;
        assert!(pricing.planning_ms() > 0.5 * compute_4_workers);

        // Ray tracing: planning is negligible next to compute.
        let rt = AppProfile::ray_tracing();
        assert!(rt.planning_ms() < 0.02 * rt.serial_compute_ms());
        assert!((rt.planning_ms() - 500.0).abs() < 100.0, "≈500 ms flat");

        // Prefetch: aggregation exceeds the 4-worker compute share.
        let pf = AppProfile::prefetch();
        let agg = pf.agg_per_task_ms * pf.tasks as f64;
        assert!(agg > pf.serial_compute_ms() / 4.0);
    }

    #[test]
    fn testbeds_are_the_papers() {
        assert_eq!(AppProfile::option_pricing().testbed.worker_count(), 13);
        assert_eq!(AppProfile::ray_tracing().testbed.worker_count(), 5);
        assert_eq!(AppProfile::prefetch().testbed.worker_count(), 5);
    }
}
