//! The structured-tracing facade: spans, events and subscribers.
//!
//! Instrumented code marks regions with [`span!`](crate::span) and points
//! with [`event!`](crate::event), each carrying key–value fields. Nothing
//! happens unless a [`Subscriber`] is installed: the macros compile down
//! to one relaxed atomic load and a branch, so the disabled path costs a
//! few nanoseconds and allocates nothing — instrumentation can stay in
//! hot paths permanently.
//!
//! When a subscriber *is* installed, each span enter/exit and each event
//! is dispatched to it with the thread-local span depth attached, so a
//! subscriber can reconstruct the span tree per thread. Three subscribers
//! ship here: the implicit no-op default, a [`StderrSubscriber`] for
//! humans and CI greps, and a [`RingBufferSubscriber`] for tests that
//! assert on emitted span trees.

use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use crate::context::{self, TraceContext};

/// A field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Signed integer.
    I64(i64),
    /// Unsigned integer.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Text.
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v:.3}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v:?}"),
        }
    }
}

macro_rules! impl_from {
    ($($ty:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl From<$ty> for FieldValue {
            fn from(v: $ty) -> FieldValue {
                FieldValue::$variant(v as $conv)
            }
        }
    )*};
}

impl_from!(
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64, i64 => I64 as i64,
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64, u64 => U64 as u64,
    usize => U64 as u64, f32 => F64 as f64, f64 => F64 as f64,
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> FieldValue {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> FieldValue {
        FieldValue::Str(v.to_owned())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> FieldValue {
        FieldValue::Str(v)
    }
}

/// What a [`TraceEvent`] describes.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceKind {
    /// A span was entered.
    SpanEnter,
    /// A span was exited.
    SpanExit {
        /// Wall-clock time spent inside the span, microseconds.
        elapsed_us: u64,
    },
    /// A point event.
    Event,
}

/// One dispatched trace record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Span/event kind.
    pub kind: TraceKind,
    /// Static name, e.g. `master.planning` or `worker.transition`.
    pub name: &'static str,
    /// Key–value fields attached at the call site.
    pub fields: Vec<(&'static str, FieldValue)>,
    /// Span nesting depth on the emitting thread (0 = top level).
    pub depth: usize,
    /// The distributed trace this record belongs to (0 = none current).
    pub trace_id: u64,
    /// For spans, the span's own id; for events, the enclosing span's
    /// id (0 = none).
    pub span_id: u64,
    /// The parent span's id (0 = a trace root, or no span context).
    pub parent_span_id: u64,
}

impl TraceEvent {
    /// The value of field `key`, if present.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

/// Receives every span enter/exit and event while installed.
pub trait Subscriber: Send + Sync {
    /// Handles one trace record. Called with no telemetry locks held.
    fn record(&self, event: &TraceEvent);
}

/// Bit set in [`ACTIVE`] while a subscriber is installed.
const SUBSCRIBER_BIT: u8 = 1;
/// Bit set in [`ACTIVE`] while the flight recorder is on.
const FLIGHT_BIT: u8 = 2;

static ACTIVE: AtomicU8 = AtomicU8::new(0);
static SUBSCRIBER: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// True when any trace sink — a [`Subscriber`] or the flight recorder —
/// is active. The macros check this before building fields, which is
/// what makes disabled tracing near-free: one relaxed load of a single
/// byte covers both sinks.
#[inline]
pub fn enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed) != 0
}

fn set_bit(bit: u8, on: bool) {
    if on {
        ACTIVE.fetch_or(bit, Ordering::Release);
    } else {
        ACTIVE.fetch_and(!bit, Ordering::Release);
    }
}

/// Flips the flight-recorder bit (crate use; see [`crate::flight`]).
pub(crate) fn set_flight_active(on: bool) {
    set_bit(FLIGHT_BIT, on);
}

/// Installs `subscriber` as the process-wide trace sink, replacing any
/// previous one.
pub fn install(subscriber: Arc<dyn Subscriber>) {
    *SUBSCRIBER.write().unwrap_or_else(|e| e.into_inner()) = Some(subscriber);
    set_bit(SUBSCRIBER_BIT, true);
}

/// Removes the installed subscriber. The flight recorder, if on, keeps
/// recording; otherwise tracing reverts to the no-op default.
pub fn uninstall() {
    set_bit(SUBSCRIBER_BIT, false);
    *SUBSCRIBER.write().unwrap_or_else(|e| e.into_inner()) = None;
}

fn dispatch(event: TraceEvent) {
    let active = ACTIVE.load(Ordering::Relaxed);
    if active & SUBSCRIBER_BIT != 0 {
        let subscriber = SUBSCRIBER.read().unwrap_or_else(|e| e.into_inner()).clone();
        if let Some(s) = subscriber {
            s.record(&event);
        }
    }
    if active & FLIGHT_BIT != 0 {
        crate::flight::record(event); // takes ownership: no clone on this path
    }
}

/// Emits a point event (used by [`event!`](crate::event); call the macro,
/// not this).
pub fn emit_event(name: &'static str, fields: Vec<(&'static str, FieldValue)>) {
    let ctx = TraceContext::current();
    dispatch(TraceEvent {
        kind: TraceKind::Event,
        name,
        fields,
        depth: DEPTH.with(|d| d.get()),
        trace_id: ctx.map(|c| c.trace_id).unwrap_or(0),
        span_id: ctx.map(|c| c.span_id).unwrap_or(0),
        parent_span_id: 0,
    });
}

/// RAII guard for an entered span: emits `SpanExit` (with the elapsed
/// time) on drop. Constructed by [`span!`](crate::span).
#[must_use = "a span ends when its guard drops; bind it with `let _span = span!(..)`"]
pub struct SpanGuard {
    data: Option<SpanData>,
}

struct SpanData {
    name: &'static str,
    start: Instant,
    ctx: TraceContext,
    parent: Option<TraceContext>,
}

impl SpanGuard {
    /// Enters a span (used by [`span!`](crate::span); call the macro, not
    /// this). The span becomes a child of the thread's current
    /// [`TraceContext`] (same trace id, fresh span id) — or a new trace
    /// root if there is none — and makes itself current until exit.
    pub fn enter(name: &'static str, fields: Vec<(&'static str, FieldValue)>) -> SpanGuard {
        let depth = DEPTH.with(|d| {
            let depth = d.get();
            d.set(depth + 1);
            depth
        });
        let parent = TraceContext::current();
        let ctx = match parent {
            Some(p) => p.child(),
            None => TraceContext::root(),
        };
        context::set_current(Some(ctx));
        dispatch(TraceEvent {
            kind: TraceKind::SpanEnter,
            name,
            fields,
            depth,
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_span_id: parent.map(|p| p.span_id).unwrap_or(0),
        });
        SpanGuard {
            data: Some(SpanData {
                name,
                start: Instant::now(),
                ctx,
                parent,
            }),
        }
    }

    /// The no-op guard the macro returns while tracing is disabled.
    pub fn disabled() -> SpanGuard {
        SpanGuard { data: None }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(data) = self.data.take() else {
            return;
        };
        let depth = DEPTH.with(|d| {
            let depth = d.get().saturating_sub(1);
            d.set(depth);
            depth
        });
        context::set_current(data.parent);
        dispatch(TraceEvent {
            kind: TraceKind::SpanExit {
                elapsed_us: data.start.elapsed().as_micros() as u64,
            },
            name: data.name,
            fields: Vec::new(),
            depth,
            trace_id: data.ctx.trace_id,
            span_id: data.ctx.span_id,
            parent_span_id: data.parent.map(|p| p.span_id).unwrap_or(0),
        });
    }
}

/// Opens a span with key–value fields; returns a [`SpanGuard`] that closes
/// it on drop. Compiles to an atomic load + branch when no subscriber is
/// installed.
///
/// ```
/// let _span = acc_telemetry::span!("master.planning", tasks = 128usize);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::trace::enabled() {
            $crate::trace::SpanGuard::enter(
                $name,
                vec![$((stringify!($key), $crate::trace::FieldValue::from($value))),*],
            )
        } else {
            $crate::trace::SpanGuard::disabled()
        }
    };
}

/// Emits a point event with key–value fields. Compiles to an atomic load
/// + branch when no subscriber is installed.
///
/// ```
/// acc_telemetry::event!("worker.transition", from = "Stopped", to = "Running");
/// ```
#[macro_export]
macro_rules! event {
    ($name:expr $(, $key:ident = $value:expr)* $(,)?) => {
        if $crate::trace::enabled() {
            $crate::trace::emit_event(
                $name,
                vec![$((stringify!($key), $crate::trace::FieldValue::from($value))),*],
            );
        }
    };
}

// ---------------------------------------------------------------------
// Shipped subscribers.
// ---------------------------------------------------------------------

/// Writes one line per trace record to stderr — the subscriber behind
/// `ACC_TRACE=stderr`, and what CI greps for required span names.
#[derive(Debug, Default)]
pub struct StderrSubscriber;

impl Subscriber for StderrSubscriber {
    fn record(&self, event: &TraceEvent) {
        let indent = "  ".repeat(event.depth);
        let mut fields = String::new();
        for (k, v) in &event.fields {
            fields.push_str(&format!(" {k}={v}"));
        }
        match &event.kind {
            TraceKind::SpanEnter => eprintln!("[trace] {indent}> {}{fields}", event.name),
            TraceKind::SpanExit { elapsed_us } => {
                eprintln!("[trace] {indent}< {} ({elapsed_us} us)", event.name)
            }
            TraceKind::Event => eprintln!("[trace] {indent}. {}{fields}", event.name),
        }
    }
}

/// Captures the last `capacity` trace records in memory, for tests that
/// assert on the emitted span tree.
#[derive(Debug)]
pub struct RingBufferSubscriber {
    capacity: usize,
    events: Mutex<VecDeque<TraceEvent>>,
}

impl RingBufferSubscriber {
    /// A ring buffer retaining the most recent `capacity` records.
    pub fn new(capacity: usize) -> Arc<RingBufferSubscriber> {
        Arc::new(RingBufferSubscriber {
            capacity: capacity.max(1),
            events: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<TraceEvent>> {
        self.events.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// All captured records, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock().iter().cloned().collect()
    }

    /// Names of captured records, oldest first (spans appear once per
    /// enter and once per exit).
    pub fn names(&self) -> Vec<&'static str> {
        self.lock().iter().map(|e| e.name).collect()
    }

    /// Names of span-enter records only, oldest first — the span tree in
    /// preorder for single-threaded sections.
    pub fn span_names(&self) -> Vec<&'static str> {
        self.lock()
            .iter()
            .filter(|e| e.kind == TraceKind::SpanEnter)
            .map(|e| e.name)
            .collect()
    }

    /// Number of captured records named `name`.
    pub fn count(&self, name: &str) -> usize {
        self.lock().iter().filter(|e| e.name == name).count()
    }

    /// Drops all captured records.
    pub fn clear(&self) {
        self.lock().clear();
    }
}

impl Subscriber for RingBufferSubscriber {
    fn record(&self, event: &TraceEvent) {
        let mut events = self.lock();
        if events.len() == self.capacity {
            events.pop_front();
        }
        events.push_back(event.clone());
    }
}

/// Installs the stderr subscriber when the `ACC_TRACE` environment
/// variable is set (to anything but `0` or the empty string). Returns
/// whether tracing ended up enabled. Idempotent, so every entry point can
/// call it.
pub fn init_from_env() -> bool {
    match std::env::var("ACC_TRACE") {
        Ok(v) if !v.is_empty() && v != "0" => {
            if !enabled() {
                install(Arc::new(StderrSubscriber));
            }
            true
        }
        _ => enabled(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Subscriber installation is process-global; every test that installs
    // one (here and in `flight`) serialises on this lock so captures
    // don't interleave.
    use crate::TEST_EXCLUSIVE as EXCLUSIVE;

    fn with_ring<R>(f: impl FnOnce(&RingBufferSubscriber) -> R) -> R {
        let _guard = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
        let ring = RingBufferSubscriber::new(1024);
        install(ring.clone());
        let out = f(&ring);
        uninstall();
        out
    }

    #[test]
    fn disabled_macros_are_inert() {
        assert!(!enabled());
        let _span = span!("never.seen", x = 1);
        event!("never.seen.event", y = 2);
        // Nothing to assert beyond "did not panic / did not allocate a
        // subscriber": enabled() is still false.
        assert!(!enabled());
    }

    #[test]
    fn span_tree_with_depths_and_fields() {
        let events = with_ring(|ring| {
            {
                let _outer = span!("outer", job = "j");
                {
                    let _inner = span!("inner", task = 7u64);
                    event!("tick", ok = true);
                }
            }
            ring.events()
        });
        let shape: Vec<(&str, usize, bool)> = events
            .iter()
            .map(|e| (e.name, e.depth, e.kind == TraceKind::SpanEnter))
            .collect();
        assert_eq!(
            shape,
            vec![
                ("outer", 0, true),
                ("inner", 1, true),
                ("tick", 2, false),
                ("inner", 1, false),
                ("outer", 0, false),
            ]
        );
        assert_eq!(
            events[0].field("job"),
            Some(&FieldValue::Str("j".to_owned()))
        );
        assert_eq!(events[1].field("task"), Some(&FieldValue::U64(7)));
        let TraceKind::SpanExit { .. } = events[3].kind else {
            panic!("inner exit expected");
        };
    }

    #[test]
    fn ring_buffer_caps_capacity() {
        let _guard = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
        let ring = RingBufferSubscriber::new(4);
        install(ring.clone());
        for _ in 0..10 {
            event!("e");
        }
        uninstall();
        assert_eq!(ring.events().len(), 4);
    }

    #[test]
    fn spans_carry_linked_trace_context() {
        let events = with_ring(|ring| {
            assert_eq!(TraceContext::current(), None);
            {
                let _outer = span!("ctx.outer");
                let outer_ctx = TraceContext::current().expect("outer span sets context");
                {
                    let _inner = span!("ctx.inner");
                    let inner_ctx = TraceContext::current().unwrap();
                    assert_eq!(inner_ctx.trace_id, outer_ctx.trace_id);
                    assert_ne!(inner_ctx.span_id, outer_ctx.span_id);
                    event!("ctx.tick");
                }
                assert_eq!(TraceContext::current(), Some(outer_ctx));
            }
            assert_eq!(TraceContext::current(), None);
            ring.events()
        });
        let outer = &events[0];
        let inner = &events[1];
        let tick = &events[2];
        assert_eq!(outer.parent_span_id, 0, "outer is a trace root");
        assert_ne!(outer.trace_id, 0);
        assert_eq!(inner.trace_id, outer.trace_id);
        assert_eq!(inner.parent_span_id, outer.span_id);
        assert_eq!(tick.trace_id, outer.trace_id);
        assert_eq!(
            tick.span_id, inner.span_id,
            "event pinned to enclosing span"
        );
        // Exits carry the same ids as their enters.
        assert_eq!(events[3].span_id, inner.span_id);
        assert_eq!(events[4].span_id, outer.span_id);
    }

    #[test]
    fn attached_context_becomes_span_parent() {
        let (remote, events) = with_ring(|ring| {
            let remote = TraceContext::root();
            {
                let _ctx = remote.attach();
                let _span = span!("ctx.adopted");
            }
            (remote, ring.events())
        });
        assert_eq!(events[0].trace_id, remote.trace_id);
        assert_eq!(events[0].parent_span_id, remote.span_id);
        assert_ne!(events[0].span_id, remote.span_id);
    }

    #[test]
    fn uninstall_mid_span_still_balances_depth() {
        let _guard = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
        let ring = RingBufferSubscriber::new(64);
        install(ring.clone());
        {
            let _span = span!("survivor");
            uninstall();
        } // exit dispatches to nobody, but depth must rewind
        install(ring.clone());
        event!("after");
        uninstall();
        let last = ring.events().pop().unwrap();
        assert_eq!(last.name, "after");
        assert_eq!(last.depth, 0, "depth leaked by uninstalled span");
    }
}
