//! PageRank-based web-page pre-fetching on the adaptive cluster (paper
//! §5.1.3).
//!
//! Generates a synthetic 500-page web cluster, computes PageRank by
//! strip-parallel power iteration (25 tasks of 20 rows per iteration, with
//! the inter-iteration barrier at the master), and then measures the cache
//! hit-rate gain that rank-driven pre-fetching buys a simulated user.
//!
//! Run with: `cargo run --release --example prefetch`

use std::time::Duration;

use adaptive_spaces::apps::prefetch::{
    generate_cluster, pagerank_sequential, run_pagerank_parallel, simulate_sessions, LinkGraph,
    PrefetchApp,
};
use adaptive_spaces::cluster::NodeSpec;
use adaptive_spaces::framework::{ClusterBuilder, FrameworkConfig, Master};

fn main() {
    let config = FrameworkConfig {
        poll_interval: Duration::from_millis(20),
        ..FrameworkConfig::default()
    };
    let mut cluster = ClusterBuilder::new(config).build();

    let mut app = PrefetchApp::paper_configuration();
    println!(
        "page cluster: {} pages, strips of 20 => {} tasks per iteration",
        app.matrix().n(),
        25
    );

    cluster.install(&app);
    for i in 0..4 {
        cluster.add_worker(NodeSpec::new(format!("ranker-{i}"), 800, 256));
    }

    // Parallel PageRank: one master round per power iteration.
    let space = cluster.find_space().expect("space in federation");
    let master = Master::new(space);
    let reports = run_pagerank_parallel(&master, &mut app).expect("iterations complete");
    println!(
        "converged after {} iterations (delta {:.2e})",
        app.iterations(),
        app.last_delta()
    );
    let total_ms: f64 = reports.iter().map(|r| r.times.parallel_ms).sum();
    println!("total parallel time across iterations: {total_ms:.1} ms");

    // Must equal the sequential solver bit-for-bit.
    let (seq_ranks, seq_iters) = pagerank_sequential(&app.matrix(), &app.solver);
    assert_eq!(app.iterations(), seq_iters);
    assert_eq!(app.ranks(), &seq_ranks[..], "parallel == sequential");

    // The payoff: pre-fetching important linked pages improves cache hits.
    let pages = generate_cluster("acme", 500, 2001);
    let graph = LinkGraph::from_pages(&pages);
    let stats = simulate_sessions(&graph, app.ranks(), 20_000, 12, 5, 7);
    println!();
    println!("user-session simulation over {} requests:", stats.requests);
    println!(
        "  hit rate, plain LRU cache : {:5.1}%",
        stats.hit_rate_plain * 100.0
    );
    println!(
        "  hit rate, with prefetching: {:5.1}%",
        stats.hit_rate_prefetch * 100.0
    );

    cluster.shutdown();
}
