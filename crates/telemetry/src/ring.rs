//! Bounded time-series history: a fixed-size ring of `(timestamp, value)`
//! samples per series, with windowed min/max/mean/p99 queries.
//!
//! The registry's counters and gauges are instants — one value, no
//! memory. The federation plane ([`crate::http`]'s `/cluster` consumers,
//! the MonitoringAgent's decision input) needs *trends*: was this
//! worker's load spiking for the last minute or only for the last poll?
//! A [`HistoryRing`] answers that with a fixed memory footprint:
//! `capacity` samples (default [`DEFAULT_DEPTH`]), oldest evicted first.
//!
//! Recording is a mutex-guarded `VecDeque` push — a few tens of
//! nanoseconds, and deliberately *not* on any tuple-space hot path:
//! rings are fed by the heartbeat collector and the SNMP poll loop,
//! both of which run on second-scale intervals.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Default ring depth (samples retained per series).
pub const DEFAULT_DEPTH: usize = 256;

/// One retained sample: wall-clock milliseconds and the observed value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingSample {
    /// Wall-clock timestamp, milliseconds since the Unix epoch.
    pub at_ms: u64,
    /// The observed value.
    pub value: i64,
}

/// Windowed statistics over a ring's retained samples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RingStats {
    /// Number of samples in the window.
    pub samples: usize,
    /// Most recent value (0 when empty).
    pub last: i64,
    /// Minimum over the window (0 when empty).
    pub min: i64,
    /// Maximum over the window (0 when empty).
    pub max: i64,
    /// Arithmetic mean over the window (0.0 when empty).
    pub mean: f64,
    /// 99th-percentile value over the window (0 when empty).
    pub p99: i64,
}

impl RingStats {
    const EMPTY: RingStats = RingStats {
        samples: 0,
        last: 0,
        min: 0,
        max: 0,
        mean: 0.0,
        p99: 0,
    };
}

/// A fixed-capacity time-series ring. Thread-safe; shared by reference.
#[derive(Debug)]
pub struct HistoryRing {
    capacity: usize,
    samples: Mutex<VecDeque<RingSample>>,
}

impl HistoryRing {
    /// A ring retaining up to `capacity` samples (at least 1).
    pub fn new(capacity: usize) -> HistoryRing {
        let capacity = capacity.max(1);
        HistoryRing {
            capacity,
            samples: Mutex::new(VecDeque::with_capacity(capacity)),
        }
    }

    /// The configured depth.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records a sample, evicting the oldest when full.
    pub fn record(&self, at_ms: u64, value: i64) {
        let mut samples = self.samples.lock().unwrap_or_else(|e| e.into_inner());
        if samples.len() == self.capacity {
            samples.pop_front();
        }
        samples.push_back(RingSample { at_ms, value });
    }

    /// Number of samples currently retained.
    pub fn len(&self) -> usize {
        self.samples.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of the retained samples, oldest first.
    pub fn samples(&self) -> Vec<RingSample> {
        self.samples
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .copied()
            .collect()
    }

    /// Statistics over every retained sample.
    pub fn stats(&self) -> RingStats {
        self.stats_since(0)
    }

    /// Nearest-rank percentile over every retained sample, or `None` when
    /// the ring is empty. `q` is clamped to `[0, 1]`; `percentile(0.99)`
    /// matches [`RingStats::p99`].
    pub fn percentile(&self, q: f64) -> Option<i64> {
        let samples = self.samples.lock().unwrap_or_else(|e| e.into_inner());
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<i64> = samples.iter().map(|s| s.value).collect();
        sorted.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        let rank = ((sorted.len() as f64) * q).ceil() as usize;
        Some(sorted[rank.clamp(1, sorted.len()) - 1])
    }

    /// Statistics over samples with `at_ms >= since_ms`.
    pub fn stats_since(&self, since_ms: u64) -> RingStats {
        let samples = self.samples.lock().unwrap_or_else(|e| e.into_inner());
        let window: Vec<i64> = samples
            .iter()
            .filter(|s| s.at_ms >= since_ms)
            .map(|s| s.value)
            .collect();
        if window.is_empty() {
            return RingStats::EMPTY;
        }
        let last = *window.last().expect("non-empty");
        let min = *window.iter().min().expect("non-empty");
        let max = *window.iter().max().expect("non-empty");
        let sum: i128 = window.iter().map(|&v| v as i128).sum();
        let mean = sum as f64 / window.len() as f64;
        let mut sorted = window.clone();
        sorted.sort_unstable();
        // Nearest-rank p99 (1-based rank ⌈0.99·n⌉).
        let rank = ((sorted.len() as f64) * 0.99).ceil() as usize;
        let p99 = sorted[rank.clamp(1, sorted.len()) - 1];
        RingStats {
            samples: window.len(),
            last,
            min,
            max,
            mean,
            p99,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_reports_zeroes() {
        let ring = HistoryRing::new(8);
        assert!(ring.is_empty());
        assert_eq!(ring.stats(), RingStats::EMPTY);
    }

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let ring = HistoryRing::new(4);
        for i in 0..10 {
            ring.record(i, i as i64);
        }
        assert_eq!(ring.len(), 4);
        let samples = ring.samples();
        assert_eq!(samples[0].value, 6);
        assert_eq!(samples[3].value, 9);
    }

    #[test]
    fn stats_cover_min_max_mean_p99() {
        let ring = HistoryRing::new(128);
        for v in 1..=100 {
            ring.record(v, v as i64);
        }
        let stats = ring.stats();
        assert_eq!(stats.samples, 100);
        assert_eq!(stats.last, 100);
        assert_eq!(stats.min, 1);
        assert_eq!(stats.max, 100);
        assert!((stats.mean - 50.5).abs() < 1e-9);
        assert_eq!(stats.p99, 99);
    }

    #[test]
    fn windowed_stats_filter_by_timestamp() {
        let ring = HistoryRing::new(128);
        ring.record(100, 10);
        ring.record(200, 20);
        ring.record(300, 30);
        let stats = ring.stats_since(150);
        assert_eq!(stats.samples, 2);
        assert_eq!(stats.min, 20);
        assert_eq!(stats.max, 30);
        let none = ring.stats_since(1_000);
        assert_eq!(none.samples, 0);
    }

    #[test]
    fn percentile_matches_nearest_rank() {
        let ring = HistoryRing::new(128);
        assert_eq!(ring.percentile(0.95), None);
        for v in 1..=100 {
            ring.record(v, v as i64);
        }
        assert_eq!(ring.percentile(0.99), Some(99));
        assert_eq!(ring.percentile(0.5), Some(50));
        assert_eq!(ring.percentile(0.0), Some(1));
        assert_eq!(ring.percentile(1.0), Some(100));
        assert_eq!(ring.percentile(2.0), Some(100));
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = HistoryRing::new(0);
        ring.record(1, 1);
        ring.record(2, 2);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.stats().last, 2);
    }
}
