//! Synthetic web-page clusters and link parsing.
//!
//! The paper's workload is a cluster of closely related pages (a single
//! company's site). We generate such a cluster deterministically — a few
//! hub pages everyone links to, plus local neighbourhood links — emit real
//! HTML, and parse the `href`s back out, exercising the same
//! scan-the-page-for-links path the paper's implementation used.

use crate::rng::SplitMix64;

/// One synthetic page: its URL and HTML body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WebPage {
    /// Site-relative URL, e.g. `/page/17.html`.
    pub url: String,
    /// The HTML body containing the links.
    pub html: String,
}

/// Extracts the `href` targets of anchor tags from HTML. Only plain
/// double-quoted hrefs are considered (enough for our generator and for
/// most real markup).
pub fn parse_links(html: &str) -> Vec<String> {
    let mut links = Vec::new();
    let mut rest = html;
    while let Some(pos) = rest.find("href=\"") {
        rest = &rest[pos + 6..];
        if let Some(end) = rest.find('"') {
            links.push(rest[..end].to_owned());
            rest = &rest[end + 1..];
        } else {
            break;
        }
    }
    links
}

fn page_url(index: usize) -> String {
    format!("/page/{index}.html")
}

/// Generates a deterministic cluster of `n` interlinked pages.
///
/// Structure: the first `n/50 + 1` pages are hubs that most pages link to
/// (giving a skewed rank distribution, as on real sites); every page also
/// links to a handful of pseudo-random neighbours. Page 0 links to nothing
/// beyond its neighbours; a few pages are left dangling (no links) to
/// exercise the dangling-node handling in the matrix construction.
pub fn generate_cluster(name: &str, n: usize, seed: u64) -> Vec<WebPage> {
    assert!(n >= 2);
    let mut rng = SplitMix64::new(seed);
    let hubs = n / 50 + 1;
    let mut pages = Vec::with_capacity(n);
    for i in 0..n {
        // Roughly every 97th page is dangling.
        let dangling = n > 10 && i % 97 == 96;
        let mut targets: Vec<usize> = Vec::new();
        if !dangling {
            for hub in 0..hubs {
                if hub != i && rng.next_f64() < 0.8 {
                    targets.push(hub);
                }
            }
            let extras = 2 + rng.next_below(4) as usize;
            for _ in 0..extras {
                let t = rng.next_below(n as u64) as usize;
                if t != i {
                    targets.push(t);
                }
            }
            targets.sort_unstable();
            targets.dedup();
        }
        let mut body = String::new();
        body.push_str(&format!(
            "<html><head><title>{name} page {i}</title></head><body>\n<h1>Page {i}</h1>\n"
        ));
        for t in &targets {
            body.push_str(&format!(
                "<p>See also <a href=\"{}\">page {t}</a>.</p>\n",
                page_url(*t)
            ));
        }
        body.push_str("</body></html>\n");
        pages.push(WebPage {
            url: page_url(i),
            html: body,
        });
    }
    pages
}

/// The link structure of a page cluster: `successors[j]` lists the page
/// indices that page `j` links to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkGraph {
    /// Number of pages.
    pub n: usize,
    /// Successor lists, indexed by source page.
    pub successors: Vec<Vec<u32>>,
}

impl LinkGraph {
    /// Builds the graph by parsing every page's links and resolving them
    /// against the cluster's URLs. Links leaving the cluster are ignored
    /// (the paper only follows links "to other pages on the local
    /// server").
    pub fn from_pages(pages: &[WebPage]) -> LinkGraph {
        let index: std::collections::HashMap<&str, u32> = pages
            .iter()
            .enumerate()
            .map(|(i, p)| (p.url.as_str(), i as u32))
            .collect();
        let successors = pages
            .iter()
            .map(|page| {
                let mut out: Vec<u32> = parse_links(&page.html)
                    .iter()
                    .filter_map(|href| index.get(href.as_str()).copied())
                    .collect();
                out.sort_unstable();
                out.dedup();
                out
            })
            .collect();
        LinkGraph {
            n: pages.len(),
            successors,
        }
    }

    /// Out-degree of page `j`.
    pub fn out_degree(&self, j: usize) -> usize {
        self.successors[j].len()
    }

    /// Total number of links.
    pub fn edges(&self) -> usize {
        self.successors.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_links_extracts_hrefs() {
        let html = r#"<a href="/a.html">A</a> text <a class="x" href="/b.html">B</a>"#;
        assert_eq!(parse_links(html), vec!["/a.html", "/b.html"]);
        assert!(parse_links("no links here").is_empty());
        assert!(parse_links(r#"href=""#).is_empty(), "unterminated href");
    }

    #[test]
    fn cluster_is_deterministic() {
        let a = generate_cluster("acme", 100, 7);
        let b = generate_cluster("acme", 100, 7);
        assert_eq!(a, b);
        let c = generate_cluster("acme", 100, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn graph_roundtrips_through_html() {
        let pages = generate_cluster("acme", 200, 42);
        let graph = LinkGraph::from_pages(&pages);
        assert_eq!(graph.n, 200);
        assert!(graph.edges() > 200, "cluster should be well linked");
        // All successors are valid page indices.
        for succ in &graph.successors {
            for &t in succ {
                assert!((t as usize) < 200);
            }
        }
    }

    #[test]
    fn hubs_have_high_in_degree() {
        let pages = generate_cluster("acme", 300, 1);
        let graph = LinkGraph::from_pages(&pages);
        let mut in_degree = vec![0usize; graph.n];
        for succ in &graph.successors {
            for &t in succ {
                in_degree[t as usize] += 1;
            }
        }
        let hubs = 300 / 50 + 1;
        let hub_avg: f64 = in_degree[..hubs].iter().sum::<usize>() as f64 / hubs as f64;
        let rest_avg: f64 =
            in_degree[hubs..].iter().sum::<usize>() as f64 / (graph.n - hubs) as f64;
        assert!(
            hub_avg > 5.0 * rest_avg,
            "hub avg {hub_avg} vs rest {rest_avg}"
        );
    }

    #[test]
    fn dangling_pages_exist() {
        let pages = generate_cluster("acme", 300, 5);
        let graph = LinkGraph::from_pages(&pages);
        assert!(
            (0..graph.n).any(|j| graph.out_degree(j) == 0),
            "generator should leave some dangling pages"
        );
    }

    #[test]
    fn no_self_links() {
        let pages = generate_cluster("acme", 150, 9);
        let graph = LinkGraph::from_pages(&pages);
        for (j, succ) in graph.successors.iter().enumerate() {
            assert!(!succ.contains(&(j as u32)));
        }
    }
}
