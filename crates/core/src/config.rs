//! Framework configuration.

use std::time::Duration;

/// The inference engine's CPU-load threshold rules (paper §4.4).
///
/// * external load in `[0, idle_max)`  → worker is idle → Start / Resume;
/// * external load in `[idle_max, pause_max)` → transient pressure → Pause;
/// * external load in `[pause_max, 100]` → sustained pressure → Stop.
///
/// The paper's heuristics set the bands at 0–25 / 25–50 / 50–100.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Thresholds {
    /// Exclusive upper bound of the idle band (paper: 25).
    pub idle_max: u64,
    /// Exclusive upper bound of the pause band (paper: 50).
    pub pause_max: u64,
}

impl Thresholds {
    /// The paper's threshold heuristics: 25 / 50.
    pub fn paper() -> Thresholds {
        Thresholds {
            idle_max: 25,
            pause_max: 50,
        }
    }

    /// Custom thresholds; panics if not `0 < idle_max <= pause_max <= 100`.
    pub fn new(idle_max: u64, pause_max: u64) -> Thresholds {
        assert!(
            idle_max > 0 && idle_max <= pause_max && pause_max <= 100,
            "thresholds must satisfy 0 < idle_max <= pause_max <= 100"
        );
        Thresholds {
            idle_max,
            pause_max,
        }
    }
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds::paper()
    }
}

/// Everything tunable about a framework deployment.
#[derive(Debug, Clone)]
pub struct FrameworkConfig {
    /// SNMP community string shared by manager and agents.
    pub community: String,
    /// How often the monitoring agent polls each worker.
    pub poll_interval: Duration,
    /// Threshold rules for the inference engine.
    pub thresholds: Thresholds,
    /// Consecutive out-of-band samples required before the inference engine
    /// acts (1 = react immediately; higher damps oscillation).
    pub hysteresis: usize,
    /// Samples of poll history retained per worker.
    pub history_capacity: usize,
    /// Modeled cost of fetching + verifying a code bundle per KB, plus a
    /// fixed base. This is the class-loading overhead Start pays and Resume
    /// avoids.
    pub class_load_base: Duration,
    /// Per-KB component of the class-loading cost.
    pub class_load_per_kb: Duration,
    /// How long a worker waits on the task template before re-checking its
    /// signal channel.
    pub task_poll_timeout: Duration,
    /// Whether workers take tasks under a transaction (crash safety at the
    /// cost of two-phase bookkeeping). Benchmarked in the ablations.
    pub transactional_take: bool,
    /// Limits enforced around every task execution (the sandbox policy of
    /// paper §1's security challenge).
    pub policy: crate::policy::ExecutionPolicy,
    /// How many times a failing task is returned to the space before the
    /// worker writes a terminal error result instead (poison-task guard).
    pub max_task_retries: u32,
    /// How many tasks a worker fetches from the space per round trip
    /// (protocol v2 batch take). Signals are still drained between tasks,
    /// so signal latency is bounded by one task regardless — but unstarted
    /// prefetched tasks only return to the space when the worker reacts to
    /// Pause/Stop, so keep this small (paper §4.3). 1 disables prefetch.
    pub task_prefetch: usize,
    /// How many planned tasks the master writes per batched space
    /// operation during the planning phase (one pipelined round trip per
    /// chunk on a remote space).
    pub dispatch_chunk: usize,
    /// Base interval between a worker's heartbeat/metric tuple
    /// publications into the space (actual intervals are jittered
    /// ±25%). `Duration::ZERO` disables federation publishing and the
    /// master-side collector entirely. Kept at a second by default so
    /// the federation plane stays off the space's hot path.
    pub metrics_interval: Duration,
    /// Samples retained per federation history ring (per worker, per
    /// series).
    pub history_depth: usize,
    /// Straggler threshold: a worker is flagged when its compute p99
    /// exceeds `straggler_k ×` the median of all workers' median
    /// compute times.
    pub straggler_k: f64,
    /// Completed tasks required before a worker can be judged a
    /// straggler.
    pub straggler_min_samples: u64,
    /// Tail-based trace retention: a finished task whose compute time
    /// reaches this percentile of the worker's per-job compute history
    /// gets its full flight-recorder trace pinned (kept past ring
    /// eviction). Errored or retried tasks are always retained. Set
    /// `>= 1.0` to retain only the per-job maximum seen so far; values
    /// are clamped to `[0, 1]`.
    pub trace_retention_percentile: f64,
    /// Completed tasks a worker must have seen (per job) before the
    /// percentile rule fires — below this the distribution is noise.
    pub trace_retention_min_samples: usize,
}

impl Default for FrameworkConfig {
    fn default() -> Self {
        FrameworkConfig {
            community: "public".into(),
            poll_interval: Duration::from_millis(100),
            thresholds: Thresholds::paper(),
            hysteresis: 1,
            history_capacity: 1024,
            class_load_base: Duration::from_millis(40),
            class_load_per_kb: Duration::from_micros(200),
            task_poll_timeout: Duration::from_millis(50),
            transactional_take: false,
            policy: crate::policy::ExecutionPolicy::default(),
            max_task_retries: 3,
            task_prefetch: 4,
            dispatch_chunk: 256,
            metrics_interval: Duration::from_secs(1),
            history_depth: acc_telemetry::DEFAULT_DEPTH,
            straggler_k: 4.0,
            straggler_min_samples: 5,
            trace_retention_percentile: 0.95,
            trace_retention_min_samples: 8,
        }
    }
}

impl FrameworkConfig {
    /// The observer tuning derived from this deployment's settings.
    pub fn observer_config(&self) -> acc_cluster::ObserverConfig {
        acc_cluster::ObserverConfig {
            history_depth: self.history_depth,
            straggler_k: self.straggler_k,
            straggler_min_samples: self.straggler_min_samples,
        }
    }
}

impl FrameworkConfig {
    /// The modeled class-loading duration for a bundle of `kb` kilobytes.
    pub fn class_load_cost(&self, kb: u64) -> Duration {
        self.class_load_base + self.class_load_per_kb * (kb as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_thresholds() {
        let t = Thresholds::paper();
        assert_eq!(t.idle_max, 25);
        assert_eq!(t.pause_max, 50);
        assert_eq!(Thresholds::default(), t);
    }

    #[test]
    fn custom_thresholds_validated() {
        let t = Thresholds::new(10, 90);
        assert_eq!(t.idle_max, 10);
        assert!(std::panic::catch_unwind(|| Thresholds::new(0, 50)).is_err());
        assert!(std::panic::catch_unwind(|| Thresholds::new(60, 50)).is_err());
        assert!(std::panic::catch_unwind(|| Thresholds::new(10, 101)).is_err());
    }

    #[test]
    fn class_load_cost_scales_with_size() {
        let cfg = FrameworkConfig::default();
        let small = cfg.class_load_cost(10);
        let large = cfg.class_load_cost(1000);
        assert!(large > small);
        assert_eq!(
            small,
            Duration::from_millis(40) + Duration::from_micros(2000)
        );
    }
}
