//! Cluster-wide metric federation through the tuple space itself.
//!
//! The paper's adaptive loop is only as informed as what the monitoring
//! agent can see. This module gives it a cluster view instead of a
//! last-sample view:
//!
//! * workers (and the space server) periodically publish a compact
//!   [`MetricsReport`] heartbeat tuple — type [`METRICS_TYPE`], payload a
//!   versioned little-endian byte record in the same style as the `tctx`
//!   trace-context field;
//! * a master-side [`ClusterObserver`] collects those tuples, folds them
//!   into per-worker [`HistoryRing`]s (bounded time series), mirrors the
//!   latest values into the global registry under `cluster.<worker>.*`,
//!   and renders the whole table for the `/cluster` route (text + JSON);
//! * result tuples carry a [`TaskTiming`] attribution record
//!   (space-wait, transfer, compute, result-write), aggregated into
//!   per-worker and per-job histograms;
//! * a straggler detector flags workers whose compute p99 exceeds
//!   `k · median` of the cluster's per-worker medians;
//! * the observer implements [`DecisionInput`], so the monitoring agent's
//!   exclusion decisions can use load *trends* and straggler flags, not
//!   only the instantaneous SNMP sample.
//!
//! Everything here is off the hot path by construction: heartbeats are
//! second-scale and jittered ([`jittered_interval`]), attribution is one
//! histogram observe per *completed task*, and an unobserved (v0-style)
//! worker that never publishes simply falls back to raw SNMP samples —
//! the same probe-and-fallback posture as the wire protocol.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use acc_telemetry::{registry, Histogram, HistoryRing, RingStats};
use acc_tuplespace::{Template, Tuple};
use parking_lot::Mutex;

/// Tuple type of the heartbeat/metric tuples workers publish.
pub const METRICS_TYPE: &str = "acc.metrics";

/// Current version byte of the [`MetricsReport`] body encoding.
const REPORT_VERSION: u8 = 1;
/// Current version byte of the [`TaskTiming`] encoding.
const TIMING_VERSION: u8 = 1;

/// Wall-clock milliseconds since the Unix epoch.
pub fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// One heartbeat: a worker's (or the space server's) self-reported state
/// at a point in time. Rides the space as an [`METRICS_TYPE`] tuple with
/// the numeric payload packed into a single versioned bytes field, so
/// the whole report costs one tuple write per interval.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsReport {
    /// Reporting entity: a worker name, or `space:<name>` for the space
    /// server's self-report.
    pub worker: String,
    /// Monotone per-worker sequence number; the collector is idempotent
    /// by `(worker, seq)`, which is what makes duplicate and late
    /// heartbeats harmless.
    pub seq: u64,
    /// Wall-clock milliseconds since the Unix epoch at publication.
    pub at_ms: u64,
    /// Total CPU load percentage (0–100) seen by the reporter.
    pub total_load: u64,
    /// The framework's own share of that load (0–100).
    pub framework_load: u64,
    /// Tasks completed so far (cumulative).
    pub tasks_done: u64,
}

impl MetricsReport {
    /// Packs the numeric payload: version byte, then five `u64`s
    /// little-endian (seq, at_ms, total_load, framework_load,
    /// tasks_done) — 41 bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(41);
        out.push(REPORT_VERSION);
        for v in [
            self.seq,
            self.at_ms,
            self.total_load,
            self.framework_load,
            self.tasks_done,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Decodes an [`MetricsReport::encode`] payload for `worker`. `None`
    /// on a short body or an unknown version (a newer publisher talking
    /// to an older collector — skip, don't crash).
    pub fn decode(worker: &str, body: &[u8]) -> Option<MetricsReport> {
        if body.len() < 41 || body[0] != REPORT_VERSION {
            return None;
        }
        let word = |i: usize| u64::from_le_bytes(body[1 + i * 8..9 + i * 8].try_into().unwrap());
        Some(MetricsReport {
            worker: worker.to_owned(),
            seq: word(0),
            at_ms: word(1),
            total_load: word(2),
            framework_load: word(3),
            tasks_done: word(4),
        })
    }

    /// The tuple form written into the space.
    pub fn to_tuple(&self) -> Tuple {
        Tuple::build(METRICS_TYPE)
            .field("worker", self.worker.as_str())
            .field("seq", self.seq as i64)
            .field("body", self.encode())
            .done()
    }

    /// Parses a [`METRICS_TYPE`] tuple back into a report.
    pub fn from_tuple(tuple: &Tuple) -> Option<MetricsReport> {
        if tuple.type_name() != METRICS_TYPE {
            return None;
        }
        MetricsReport::decode(tuple.get_str("worker")?, tuple.get_bytes("body")?)
    }
}

/// The template a collector takes heartbeat tuples with.
pub fn metrics_template() -> Template {
    Template::of_type(METRICS_TYPE)
}

/// Per-task cost attribution, carried on result tuples as a compact
/// bytes field: where did this task's wall-clock go?
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskTiming {
    /// Microseconds the worker waited on the space for the take that
    /// delivered this task (full round-trip, charged to the first task
    /// of a prefetch batch).
    pub wait_us: u64,
    /// Microseconds of transfer cost amortised per task (batch
    /// round-trip divided by batch size).
    pub xfer_us: u64,
    /// Microseconds of pure compute.
    pub compute_us: u64,
    /// Microseconds spent writing the *previous* result back (a worker
    /// can't know its own result-write cost before writing; the next
    /// task carries it).
    pub write_us: u64,
}

impl TaskTiming {
    /// Version byte plus four little-endian `u64`s — 33 bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(33);
        out.push(TIMING_VERSION);
        for v in [self.wait_us, self.xfer_us, self.compute_us, self.write_us] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Decodes [`TaskTiming::to_bytes`]; `None` on short/unknown input.
    pub fn from_bytes(body: &[u8]) -> Option<TaskTiming> {
        if body.len() < 33 || body[0] != TIMING_VERSION {
            return None;
        }
        let word = |i: usize| u64::from_le_bytes(body[1 + i * 8..9 + i * 8].try_into().unwrap());
        Some(TaskTiming {
            wait_us: word(0),
            xfer_us: word(1),
            compute_us: word(2),
            write_us: word(3),
        })
    }
}

/// The monitoring agent's pluggable view of the federation plane.
///
/// The default implementation of every method is the v0 behaviour
/// (pass raw samples through, flag nothing), so an agent without an
/// observer — or an observer that has never heard from a worker —
/// degrades to exactly the paper's last-SNMP-sample loop.
pub trait DecisionInput: Send + Sync {
    /// Called on every SNMP poll with the raw external/total load split.
    fn on_load_sample(&self, _worker: &str, _external: u64, _total: u64) {}

    /// The load value the inference engine should act on; defaults to
    /// the raw sample (unknown workers fall back unchanged).
    fn effective_load(&self, _worker: &str, raw: u64) -> u64 {
        raw
    }

    /// True when the federation plane has flagged this worker as a
    /// compute straggler (and it should be treated as overloaded).
    fn is_straggler(&self, _worker: &str) -> bool {
        false
    }
}

/// A no-op [`DecisionInput`]: the v0 monitoring loop.
#[derive(Debug, Default, Clone, Copy)]
pub struct RawSamples;

impl DecisionInput for RawSamples {}

/// Tuning for the observer's rings and straggler detector.
#[derive(Debug, Clone, Copy)]
pub struct ObserverConfig {
    /// Samples retained per history ring.
    pub history_depth: usize,
    /// Straggler threshold: flagged when a worker's compute p99 exceeds
    /// `k ×` the median of all workers' median compute times.
    pub straggler_k: f64,
    /// Minimum completed tasks before a worker can be judged at all.
    pub straggler_min_samples: u64,
}

impl Default for ObserverConfig {
    fn default() -> ObserverConfig {
        ObserverConfig {
            history_depth: acc_telemetry::DEFAULT_DEPTH,
            straggler_k: 4.0,
            straggler_min_samples: 5,
        }
    }
}

/// Registry mirror handles for one worker, registered once under leaked
/// `cluster.<worker>.*` names (the registry keys by `&'static str`; the
/// leak is bounded by workers × series).
#[derive(Debug)]
struct MirrorSeries {
    load: Arc<acc_telemetry::Gauge>,
    framework_load: Arc<acc_telemetry::Gauge>,
    tasks_done: Arc<acc_telemetry::Gauge>,
}

impl MirrorSeries {
    fn new(worker: &str) -> MirrorSeries {
        let leaked = |suffix: &str| -> &'static str {
            Box::leak(format!("cluster.{worker}.{suffix}").into_boxed_str())
        };
        MirrorSeries {
            load: registry().gauge(leaked("load")),
            framework_load: registry().gauge(leaked("framework_load")),
            tasks_done: registry().gauge(leaked("tasks_done")),
        }
    }
}

/// Everything the observer knows about one reporting entity.
#[derive(Debug)]
struct WorkerView {
    /// Highest heartbeat sequence number ingested (dedupe watermark).
    last_seq: u64,
    /// Wall-clock ms of the newest heartbeat.
    last_heartbeat_ms: u64,
    /// External (non-framework) load samples, fed by the SNMP poll loop.
    load: HistoryRing,
    /// Framework-load samples from heartbeats.
    framework_load: HistoryRing,
    /// Cumulative tasks-done samples from heartbeats (for throughput).
    tasks: HistoryRing,
    /// Per-worker compute-time histogram (µs), from task attribution.
    compute: Histogram,
    /// Aggregate non-compute attribution (µs), for the table.
    wait_us: u64,
    xfer_us: u64,
    write_us: u64,
    mirror: MirrorSeries,
}

impl WorkerView {
    fn new(worker: &str, depth: usize) -> WorkerView {
        WorkerView {
            last_seq: 0,
            last_heartbeat_ms: 0,
            load: HistoryRing::new(depth),
            framework_load: HistoryRing::new(depth),
            tasks: HistoryRing::new(depth),
            compute: Histogram::new(),
            wait_us: 0,
            xfer_us: 0,
            write_us: 0,
            mirror: MirrorSeries::new(worker),
        }
    }

    fn tasks_done(&self) -> u64 {
        self.tasks.stats().last.max(0) as u64
    }

    /// Tasks per second over the heartbeat window (0.0 with < 2 samples).
    fn throughput(&self) -> f64 {
        let samples = self.tasks.samples();
        let (Some(first), Some(last)) = (samples.first(), samples.last()) else {
            return 0.0;
        };
        let span_ms = last.at_ms.saturating_sub(first.at_ms);
        if span_ms == 0 {
            return 0.0;
        }
        let done = (last.value - first.value).max(0) as f64;
        done * 1000.0 / span_ms as f64
    }
}

/// The master-side collector: ingests heartbeat tuples, folds SNMP load
/// samples and task attribution into bounded history, detects
/// stragglers, and renders the `/cluster` view. Doubles as the
/// monitoring agent's [`DecisionInput`].
#[derive(Debug)]
pub struct ClusterObserver {
    config: ObserverConfig,
    workers: Mutex<BTreeMap<String, WorkerView>>,
    /// Per-job compute histograms (µs), keyed by job name.
    jobs: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl ClusterObserver {
    /// An observer with the given tuning.
    pub fn new(config: ObserverConfig) -> ClusterObserver {
        ClusterObserver {
            config,
            workers: Mutex::new(BTreeMap::new()),
            jobs: Mutex::new(BTreeMap::new()),
        }
    }

    /// The active tuning.
    pub fn config(&self) -> ObserverConfig {
        self.config
    }

    /// Ingests one heartbeat. Returns `false` (and changes nothing) for
    /// a duplicate or out-of-order report — the collector is idempotent
    /// by `(worker, seq)`, so redelivered or late tuples are harmless.
    pub fn ingest(&self, report: &MetricsReport) -> bool {
        let mut workers = self.workers.lock();
        let view = workers
            .entry(report.worker.clone())
            .or_insert_with(|| WorkerView::new(&report.worker, self.config.history_depth));
        if view.last_seq != 0 && report.seq <= view.last_seq {
            return false;
        }
        view.last_seq = report.seq;
        view.last_heartbeat_ms = report.at_ms;
        view.framework_load
            .record(report.at_ms, report.framework_load as i64);
        view.tasks.record(report.at_ms, report.tasks_done as i64);
        view.mirror.framework_load.set(report.framework_load as i64);
        view.mirror.tasks_done.set(report.tasks_done as i64);
        true
    }

    /// Folds one SNMP poll sample (external = total − framework) into
    /// the worker's load ring. Fed by [`DecisionInput::on_load_sample`].
    pub fn record_load_sample(&self, worker: &str, external: u64, _total: u64) {
        let mut workers = self.workers.lock();
        let view = workers
            .entry(worker.to_owned())
            .or_insert_with(|| WorkerView::new(worker, self.config.history_depth));
        view.load.record(now_ms(), external as i64);
        view.mirror.load.set(external as i64);
    }

    /// Records one completed task's cost attribution under its worker
    /// and job.
    pub fn record_attribution(&self, job: &str, worker: &str, timing: &TaskTiming) {
        {
            let mut workers = self.workers.lock();
            let view = workers
                .entry(worker.to_owned())
                .or_insert_with(|| WorkerView::new(worker, self.config.history_depth));
            view.compute.observe(timing.compute_us);
            view.wait_us += timing.wait_us;
            view.xfer_us += timing.xfer_us;
            view.write_us += timing.write_us;
        }
        let hist = {
            let mut jobs = self.jobs.lock();
            jobs.entry(job.to_owned())
                .or_insert_with(|| Arc::new(Histogram::new()))
                .clone()
        };
        hist.observe(timing.compute_us);
    }

    /// Number of distinct reporting entities seen so far.
    pub fn worker_count(&self) -> usize {
        self.workers.lock().len()
    }

    /// History depth of one worker's heartbeat ring (0 if unknown) —
    /// the "has it really reported?" probe used by tests and CI.
    pub fn history_len(&self, worker: &str) -> usize {
        self.workers
            .lock()
            .get(worker)
            .map(|v| v.framework_load.len())
            .unwrap_or(0)
    }

    /// Workers currently flagged as compute stragglers: compute p99
    /// exceeding `k ×` the median of all qualifying workers' medians.
    /// Needs at least two qualifying workers — an outlier is only
    /// meaningful relative to peers.
    pub fn stragglers(&self) -> Vec<String> {
        let workers = self.workers.lock();
        let mut medians: Vec<u64> = Vec::new();
        let mut candidates: Vec<(&String, u64)> = Vec::new();
        for (name, view) in workers.iter() {
            let snap = view.compute.snapshot();
            if snap.count < self.config.straggler_min_samples {
                continue;
            }
            let p50 = snap.p50().unwrap_or(0);
            medians.push(p50);
            candidates.push((name, snap.p99().unwrap_or(0)));
        }
        if medians.len() < 2 {
            return Vec::new();
        }
        let pool = medians.len();
        medians.sort_unstable();
        // Lower median on even counts: in a two-worker cluster the upper
        // median IS the slow worker's own median, which would make a
        // straggler mathematically undetectable.
        let median_of_medians = medians[(medians.len() - 1) / 2].max(1);
        let threshold = (median_of_medians as f64) * self.config.straggler_k;
        let mut flagged: Vec<(&String, u64)> = candidates
            .into_iter()
            .filter(|(_, p99)| (*p99 as f64) > threshold)
            .collect();
        // Never flag the whole pool: excluding every worker would starve
        // the cluster, and the least-slow "straggler" is by definition
        // the pool's new baseline, not an outlier from it. Sparing it
        // also makes spurious flags self-correcting — a worker stopped
        // by a transient hiccup unflags (and restarts) as soon as a
        // genuinely slower peer qualifies.
        if flagged.len() == pool {
            if let Some(fastest) = flagged
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, p99))| *p99)
                .map(|(i, _)| i)
            {
                flagged.remove(fastest);
            }
        }
        flagged.into_iter().map(|(name, _)| name.clone()).collect()
    }

    /// The aligned text table behind `GET /cluster`.
    pub fn render_text(&self) -> String {
        let stragglers = self.stragglers();
        let workers = self.workers.lock();
        let now = now_ms();
        let mut out = String::new();
        out.push_str(&format!(
            "{:<18} {:>5} {:>5} {:>7} {:>8} {:>9} {:>9} {:>7} {:>5}  {}\n",
            "WORKER",
            "LOAD",
            "FW",
            "TASKS",
            "TASK/S",
            "CP50(us)",
            "CP99(us)",
            "HB_AGE",
            "HIST",
            "FLAGS"
        ));
        for (name, view) in workers.iter() {
            let load = view.load.stats();
            let fw = view.framework_load.stats();
            let compute = view.compute.snapshot();
            let age = if view.last_heartbeat_ms == 0 {
                "-".to_owned()
            } else {
                format!("{}ms", now.saturating_sub(view.last_heartbeat_ms))
            };
            let flags = if stragglers.contains(name) {
                "STRAGGLER"
            } else {
                ""
            };
            out.push_str(&format!(
                "{:<18} {:>5} {:>5} {:>7} {:>8.1} {:>9} {:>9} {:>7} {:>5}  {}\n",
                name,
                load.last,
                fw.last,
                view.tasks_done(),
                view.throughput(),
                compute.p50().unwrap_or(0),
                compute.p99().unwrap_or(0),
                age,
                view.framework_load.len(),
                flags
            ));
        }
        if workers.is_empty() {
            out.push_str("(no workers have reported yet)\n");
        }
        out
    }

    /// The JSON document behind `GET /cluster.json`.
    pub fn render_json(&self) -> String {
        let stragglers = self.stragglers();
        let workers = self.workers.lock();
        let jobs = self.jobs.lock();
        let now = now_ms();
        let ring_json = |stats: &RingStats, len: usize| {
            format!(
                "{{\"samples\":{},\"last\":{},\"min\":{},\"max\":{},\"mean\":{:.2},\"p99\":{},\"depth\":{}}}",
                stats.samples, stats.last, stats.min, stats.max, stats.mean, stats.p99, len
            )
        };
        let hist_json = |h: &Histogram| {
            let s = h.snapshot();
            format!(
                "{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
                s.count,
                s.sum,
                s.max,
                s.p50().unwrap_or(0),
                s.p90().unwrap_or(0),
                s.p99().unwrap_or(0)
            )
        };
        let mut out = String::from("{\"workers\":{");
        let mut first = true;
        for (name, view) in workers.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\"{}\":{{\"load\":{},\"framework_load\":{},\"tasks_done\":{},\"throughput_per_s\":{:.3},\"compute_us\":{},\"wait_us\":{},\"xfer_us\":{},\"write_us\":{},\"last_seq\":{},\"heartbeat_age_ms\":{},\"history_samples\":{},\"straggler\":{}}}",
                acc_telemetry::json_escape(name),
                ring_json(&view.load.stats(), view.load.len()),
                ring_json(&view.framework_load.stats(), view.framework_load.len()),
                view.tasks_done(),
                view.throughput(),
                hist_json(&view.compute),
                view.wait_us,
                view.xfer_us,
                view.write_us,
                view.last_seq,
                if view.last_heartbeat_ms == 0 {
                    -1
                } else {
                    now.saturating_sub(view.last_heartbeat_ms) as i64
                },
                view.framework_load.len(),
                stragglers.contains(name)
            ));
        }
        out.push_str("},\"jobs\":{");
        let mut first = true;
        for (name, hist) in jobs.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\"{}\":{}",
                acc_telemetry::json_escape(name),
                hist_json(hist)
            ));
        }
        out.push_str("},\"stragglers\":[");
        let mut first = true;
        for name in &stragglers {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\"", acc_telemetry::json_escape(name)));
        }
        out.push_str("]}");
        out
    }
}

impl DecisionInput for ClusterObserver {
    fn on_load_sample(&self, worker: &str, external: u64, total: u64) {
        self.record_load_sample(worker, external, total);
    }

    /// The load the inference engine should act on: a flagged straggler
    /// reads as saturated (force exclusion); otherwise the raw sample is
    /// floored by the recent mean so one optimistic poll can't instantly
    /// undo a sustained-load trend. A worker with no history gets the
    /// raw sample back — the v0 fallback.
    fn effective_load(&self, worker: &str, raw: u64) -> u64 {
        if self.is_straggler(worker) {
            return 100;
        }
        let workers = self.workers.lock();
        let Some(view) = workers.get(worker) else {
            return raw;
        };
        let stats = view.load.stats();
        if stats.samples < 2 {
            return raw;
        }
        raw.max(stats.mean.round() as u64).min(100)
    }

    fn is_straggler(&self, worker: &str) -> bool {
        self.stragglers().iter().any(|w| w == worker)
    }
}

/// Deterministic jitter for heartbeat publication: the base interval
/// skewed by ±25% as a pure function of `(worker, seq)`, so every
/// worker drifts off the common phase (no thundering herd on the
/// space) while tests stay reproducible.
pub fn jittered_interval(base: Duration, worker: &str, seq: u64) -> Duration {
    // FNV-1a over the worker name, mixed with the sequence number via
    // a splitmix64 finaliser.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in worker.as_bytes() {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = hash ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // Map to [-0.25, +0.25).
    let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
    let skew = 0.75 + unit * 0.5;
    Duration::from_nanos((base.as_nanos() as f64 * skew) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(worker: &str, seq: u64, at_ms: u64) -> MetricsReport {
        MetricsReport {
            worker: worker.to_owned(),
            seq,
            at_ms,
            total_load: 40 + seq,
            framework_load: 10 + seq,
            tasks_done: seq * 3,
        }
    }

    #[test]
    fn report_roundtrips_through_tuple() {
        let r = report("w0", 7, 123_456);
        let decoded = MetricsReport::from_tuple(&r.to_tuple()).unwrap();
        assert_eq!(decoded, r);
    }

    #[test]
    fn decode_rejects_short_and_versioned_garbage() {
        assert_eq!(MetricsReport::decode("w", &[]), None);
        assert_eq!(MetricsReport::decode("w", &[9; 41]), None);
        let mut body = report("w", 1, 2).encode();
        body[0] = 99;
        assert_eq!(MetricsReport::decode("w", &body), None);
    }

    #[test]
    fn timing_roundtrips() {
        let t = TaskTiming {
            wait_us: 1,
            xfer_us: 2,
            compute_us: 3,
            write_us: 4,
        };
        assert_eq!(TaskTiming::from_bytes(&t.to_bytes()), Some(t));
        assert_eq!(TaskTiming::from_bytes(&[1, 2]), None);
    }

    #[test]
    fn collector_is_idempotent_by_worker_and_seq() {
        let obs = ClusterObserver::new(ObserverConfig::default());
        assert!(obs.ingest(&report("w0", 1, 100)));
        assert!(obs.ingest(&report("w0", 2, 200)));
        // Exact duplicate (redelivered tuple): ignored.
        assert!(!obs.ingest(&report("w0", 2, 200)));
        // Late heartbeat arriving after a newer one: ignored.
        assert!(!obs.ingest(&report("w0", 1, 100)));
        assert_eq!(obs.history_len("w0"), 2);
        // Another worker's seq space is independent.
        assert!(obs.ingest(&report("w1", 1, 150)));
        assert_eq!(obs.worker_count(), 2);
    }

    #[test]
    fn straggler_flagged_only_past_k_times_median() {
        let config = ObserverConfig {
            straggler_k: 3.0,
            straggler_min_samples: 5,
            ..ObserverConfig::default()
        };
        let obs = ClusterObserver::new(config);
        for _ in 0..20 {
            obs.record_attribution(
                "job",
                "fast-0",
                &TaskTiming {
                    compute_us: 1_000,
                    ..TaskTiming::default()
                },
            );
            obs.record_attribution(
                "job",
                "fast-1",
                &TaskTiming {
                    compute_us: 1_100,
                    ..TaskTiming::default()
                },
            );
            obs.record_attribution(
                "job",
                "slow",
                &TaskTiming {
                    compute_us: 50_000,
                    ..TaskTiming::default()
                },
            );
        }
        assert_eq!(obs.stragglers(), vec!["slow".to_owned()]);
        assert!(obs.is_straggler("slow"));
        assert!(!obs.is_straggler("fast-0"));
        assert_eq!(obs.effective_load("slow", 0), 100);
    }

    #[test]
    fn whole_pool_is_never_flagged_at_once() {
        // Two workers, both beyond k x the lower median (k = 1 makes the
        // faster one exceed its own median's threshold too). Flagging
        // both would stop every worker in the cluster — the fastest must
        // be spared as the new baseline.
        let config = ObserverConfig {
            straggler_k: 1.0,
            straggler_min_samples: 2,
            ..ObserverConfig::default()
        };
        let obs = ClusterObserver::new(config);
        for (worker, us) in [("meh", 10_000u64), ("worse", 40_000)] {
            for i in 0..5 {
                obs.record_attribution(
                    "job",
                    worker,
                    &TaskTiming {
                        compute_us: us + i,
                        ..TaskTiming::default()
                    },
                );
            }
        }
        assert_eq!(obs.stragglers(), vec!["worse".to_owned()]);
        assert!(!obs.is_straggler("meh"));
    }

    #[test]
    fn straggler_needs_peers_and_samples() {
        let obs = ClusterObserver::new(ObserverConfig::default());
        // One worker alone can't be an outlier.
        for _ in 0..10 {
            obs.record_attribution(
                "j",
                "only",
                &TaskTiming {
                    compute_us: 99_999,
                    ..TaskTiming::default()
                },
            );
        }
        assert!(obs.stragglers().is_empty());
        // A second worker below min_samples doesn't qualify the pool.
        obs.record_attribution(
            "j",
            "newcomer",
            &TaskTiming {
                compute_us: 10,
                ..TaskTiming::default()
            },
        );
        assert!(obs.stragglers().is_empty());
    }

    #[test]
    fn effective_load_floors_raw_by_trend_and_falls_back_when_unknown() {
        let obs = ClusterObserver::new(ObserverConfig::default());
        // Unknown worker: raw passes through (v0 fallback).
        assert_eq!(obs.effective_load("ghost", 42), 42);
        // Sustained high load: one optimistic sample is floored.
        for _ in 0..10 {
            obs.record_load_sample("w0", 80, 90);
        }
        assert_eq!(obs.effective_load("w0", 5), 80);
        // Raw above the mean wins.
        assert_eq!(obs.effective_load("w0", 95), 95);
    }

    #[test]
    fn render_covers_workers_jobs_and_stragglers() {
        let obs = ClusterObserver::new(ObserverConfig::default());
        obs.ingest(&report("w0", 1, now_ms()));
        obs.record_load_sample("w0", 12, 30);
        obs.record_attribution(
            "pricing",
            "w0",
            &TaskTiming {
                wait_us: 5,
                xfer_us: 6,
                compute_us: 700,
                write_us: 8,
            },
        );
        let text = obs.render_text();
        assert!(text.contains("WORKER"), "{text}");
        assert!(text.contains("w0"), "{text}");
        let json = obs.render_json();
        assert!(json.contains("\"w0\""), "{json}");
        assert!(json.contains("\"history_samples\":1"), "{json}");
        assert!(json.contains("\"pricing\""), "{json}");
        assert!(json.contains("\"stragglers\":[]"), "{json}");
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let base = Duration::from_millis(1_000);
        let a = jittered_interval(base, "w0", 3);
        let b = jittered_interval(base, "w0", 3);
        assert_eq!(a, b);
        let mut distinct = std::collections::BTreeSet::new();
        for seq in 0..50 {
            let d = jittered_interval(base, "w0", seq);
            assert!(d >= Duration::from_millis(750), "{d:?}");
            assert!(d < Duration::from_millis(1_250), "{d:?}");
            distinct.insert(d);
        }
        assert!(distinct.len() > 10, "jitter barely varies: {distinct:?}");
    }

    #[test]
    fn registry_mirror_appears_under_cluster_prefix() {
        let obs = ClusterObserver::new(ObserverConfig::default());
        obs.ingest(&report("mirror-test", 4, 99));
        let text = registry().render_text();
        assert!(
            text.contains("cluster.mirror-test.framework_load"),
            "{text}"
        );
        assert!(text.contains("cluster.mirror-test.tasks_done 12"), "{text}");
    }
}
