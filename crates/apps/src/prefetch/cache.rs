//! The page cache and the access-time simulation.
//!
//! The point of the application is to improve user-perceived access time
//! by pre-fetching important linked pages into a cache. We measure that
//! end-to-end: a simulated user walks the link graph (biased toward
//! high-rank pages, per the paper's premise that "the next page requested
//! is typically based on the current page"), and we compare cache hit
//! rates with pre-fetching on and off.

use crate::rng::SplitMix64;

use super::pagerank::top_linked_pages;
use super::web::LinkGraph;

/// A classic LRU cache over page indices, with hit/miss counters.
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity: usize,
    /// Most-recently-used at the back.
    entries: Vec<u32>,
    hits: u64,
    misses: u64,
}

impl LruCache {
    /// A cache holding up to `capacity` pages.
    pub fn new(capacity: usize) -> LruCache {
        LruCache {
            capacity: capacity.max(1),
            entries: Vec::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// A user request: counts a hit or miss, and caches the page.
    pub fn request(&mut self, page: u32) -> bool {
        let hit = self.touch(page);
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
        }
        hit
    }

    /// A prefetch: inserts without counting (the network cost of prefetch
    /// is off the user's critical path).
    pub fn prefetch(&mut self, page: u32) {
        self.touch(page);
    }

    fn touch(&mut self, page: u32) -> bool {
        if let Some(pos) = self.entries.iter().position(|&p| p == page) {
            let p = self.entries.remove(pos);
            self.entries.push(p);
            true
        } else {
            if self.entries.len() == self.capacity {
                self.entries.remove(0);
            }
            self.entries.push(page);
            false
        }
    }

    /// Is the page currently cached?
    pub fn contains(&self, page: u32) -> bool {
        self.entries.contains(&page)
    }

    /// Requests served from cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Requests that went to the server.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Hit fraction in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Result of a session simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionStats {
    /// Hit rate with PageRank prefetching enabled.
    pub hit_rate_prefetch: f64,
    /// Hit rate with the plain LRU cache.
    pub hit_rate_plain: f64,
    /// Total page requests simulated.
    pub requests: u64,
}

/// Simulates `requests` user page-requests over the graph, with and
/// without rank-driven prefetching of the top-`prefetch_k` linked pages.
///
/// The user model follows the paper's premise: from the current page the
/// user follows one of its links, preferring important (high-rank) pages,
/// with a small chance of jumping anywhere.
pub fn simulate_sessions(
    graph: &LinkGraph,
    ranks: &[f64],
    requests: u64,
    cache_pages: usize,
    prefetch_k: usize,
    seed: u64,
) -> SessionStats {
    let mut with = LruCache::new(cache_pages);
    let mut without = LruCache::new(cache_pages);
    let mut rng = SplitMix64::new(seed);
    let mut current: u32 = 0;
    for _ in 0..requests {
        with.request(current);
        without.request(current);
        // Prefetch the most important pages the current page links to.
        for page in top_linked_pages(&graph.successors[current as usize], ranks, prefetch_k) {
            with.prefetch(page);
        }
        // Next request: usually one of the current page's links — half the
        // time any of them, half the time biased toward important pages —
        // and sometimes a random jump elsewhere.
        let successors = &graph.successors[current as usize];
        current = if successors.is_empty() || rng.next_f64() < 0.15 {
            rng.next_below(graph.n as u64) as u32
        } else if rng.next_f64() < 0.5 {
            successors[rng.next_below(successors.len() as u64) as usize]
        } else {
            // Rank-weighted choice among successors.
            let total: f64 = successors.iter().map(|&s| ranks[s as usize]).sum();
            let mut target = rng.next_f64() * total;
            let mut chosen = successors[0];
            for &s in successors {
                target -= ranks[s as usize];
                if target <= 0.0 {
                    chosen = s;
                    break;
                }
            }
            chosen
        };
    }
    SessionStats {
        hit_rate_prefetch: with.hit_rate(),
        hit_rate_plain: without.hit_rate(),
        requests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetch::matrix::StochasticMatrix;
    use crate::prefetch::pagerank::PageRank;
    use crate::prefetch::web::generate_cluster;

    #[test]
    fn lru_evicts_least_recent() {
        let mut cache = LruCache::new(2);
        assert!(!cache.request(1));
        assert!(!cache.request(2));
        assert!(cache.request(1)); // 1 now most recent
        assert!(!cache.request(3)); // evicts 2
        assert!(!cache.contains(2));
        assert!(cache.contains(1));
        assert!(cache.contains(3));
    }

    #[test]
    fn prefetch_does_not_count_as_request() {
        let mut cache = LruCache::new(4);
        cache.prefetch(9);
        assert_eq!(cache.hits() + cache.misses(), 0);
        assert!(cache.request(9), "prefetched page is a hit");
        assert_eq!(cache.hits(), 1);
        assert!((cache.hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_cache_hit_rate_zero() {
        assert_eq!(LruCache::new(3).hit_rate(), 0.0);
    }

    #[test]
    fn prefetching_beats_plain_lru() {
        let pages = generate_cluster("acme", 200, 11);
        let graph = super::super::web::LinkGraph::from_pages(&pages);
        let m = StochasticMatrix::from_graph(&graph);
        let (ranks, _) = PageRank::default().compute(&m);
        let stats = simulate_sessions(&graph, &ranks, 5_000, 8, 5, 99);
        assert_eq!(stats.requests, 5_000);
        assert!(
            stats.hit_rate_prefetch > stats.hit_rate_plain + 0.05,
            "prefetch {} vs plain {}",
            stats.hit_rate_prefetch,
            stats.hit_rate_plain
        );
    }

    #[test]
    fn simulation_is_deterministic() {
        let pages = generate_cluster("acme", 100, 2);
        let graph = super::super::web::LinkGraph::from_pages(&pages);
        let m = StochasticMatrix::from_graph(&graph);
        let (ranks, _) = PageRank::default().compute(&m);
        let a = simulate_sessions(&graph, &ranks, 1_000, 10, 2, 5);
        let b = simulate_sessions(&graph, &ranks, 1_000, 10, 2, 5);
        assert_eq!(a, b);
    }
}
