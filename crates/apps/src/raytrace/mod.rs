//! Parallel ray tracing (paper §5.1.2).
//!
//! A recursive Whitted-style ray tracer: rays are cast from a virtual
//! camera through each pixel of the image plane into a scene of spheres
//! and planes, shaded with the Phong model, shadow rays and specular
//! reflections. The computation is identical for every pixel — only the
//! pixel's position differs — which makes the application an ideal
//! replicated-worker candidate.
//!
//! The paper's configuration renders a 600×600 image plane divided into
//! rectangular slices of 25×600 pixels, creating 24 independent tasks whose
//! inputs are four coordinates and whose outputs are arrays of pixel
//! values.

mod geometry;
mod math;
mod scene;
mod seq;
mod tasks;
mod trace;

pub use geometry::{HitRecord, Material, Plane, Ray, Shape, Sphere, Surface, Triangle};
pub use math::Vec3;
pub use scene::{benchmark_scene, Camera, Light, Scene};
pub use seq::render_sequential;
pub use tasks::{Image, RayTraceApp, StripInput};
pub use trace::{render_strip, trace_ray};
