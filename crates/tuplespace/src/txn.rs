//! Transactions over space operations.
//!
//! The paper relies on JavaSpaces transactions for fault tolerance: "in event
//! of a partial failure, the transaction either completes successfully or
//! does not execute at all" (§3). A [`Txn`] buffers writes (invisible to
//! other clients until commit), locks taken entries (restored on abort), and
//! read-locks read entries (other clients may read but not take them).
//!
//! Dropping an active transaction aborts it, so a worker that panics while
//! holding a task under a transaction returns the task to the space — the
//! entry is never lost.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::error::SpaceResult;
use crate::space::{EntryId, Space};
use crate::template::Template;
use crate::tuple::Tuple;

/// Transaction identifier, unique within a space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TxnId(pub(crate) u64);

/// Lifecycle state of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnState {
    /// Operations may still be performed under the transaction.
    Active,
    /// The transaction committed; its effects are visible.
    Committed,
    /// The transaction aborted; it had no effect.
    Aborted,
}

/// A handle to an active transaction. Obtained from [`Space::txn`].
#[derive(Debug)]
pub struct Txn {
    space: Arc<Space>,
    id: TxnId,
    finished: AtomicBool,
}

impl Txn {
    pub(crate) fn new(space: Arc<Space>, id: TxnId) -> Txn {
        Txn {
            space,
            id,
            finished: AtomicBool::new(false),
        }
    }

    /// This transaction's identifier.
    pub fn id(&self) -> TxnId {
        self.id
    }

    /// Writes a tuple under this transaction. It becomes visible to other
    /// clients only at commit; reads/takes under this same transaction see it
    /// immediately.
    pub fn write(&self, tuple: Tuple) -> SpaceResult<EntryId> {
        self.space
            .write_internal(tuple, crate::Lease::Forever, Some(self.id))
    }

    /// Reads a matching tuple under this transaction, blocking up to
    /// `timeout` (`None` blocks indefinitely). The entry is read-locked until
    /// the transaction finishes: others may read it but not take it.
    pub fn read(
        &self,
        template: &Template,
        timeout: Option<Duration>,
    ) -> SpaceResult<Option<Tuple>> {
        self.space.read_internal(template, timeout, Some(self.id))
    }

    /// Takes a matching tuple under this transaction. The entry is locked —
    /// invisible to everyone — until commit (removed) or abort (restored).
    pub fn take(
        &self,
        template: &Template,
        timeout: Option<Duration>,
    ) -> SpaceResult<Option<Tuple>> {
        self.space.take_internal(template, timeout, Some(self.id))
    }

    /// Non-blocking take under this transaction.
    pub fn take_if_exists(&self, template: &Template) -> SpaceResult<Option<Tuple>> {
        self.space
            .take_internal(template, Some(Duration::ZERO), Some(self.id))
    }

    /// Commits: buffered writes become visible, taken entries are removed,
    /// read locks are released.
    pub fn commit(self) -> SpaceResult<()> {
        self.finished.store(true, Ordering::SeqCst);
        self.space.finish_txn(self.id, true)
    }

    /// Aborts: buffered writes are discarded, taken entries are restored,
    /// read locks are released.
    pub fn abort(self) -> SpaceResult<()> {
        self.finished.store(true, Ordering::SeqCst);
        self.space.finish_txn(self.id, false)
    }
}

impl Drop for Txn {
    fn drop(&mut self) {
        if !self.finished.swap(true, Ordering::SeqCst) {
            // Abort on drop: a crashed holder must not lose entries.
            let _ = self.space.finish_txn(self.id, false);
        }
    }
}
