//! Fixed-bucket, log-scale latency histograms.
//!
//! A [`Histogram`] is an array of 64 atomic buckets where bucket *i*
//! counts observations whose value needs *i* bits — i.e. bucket
//! boundaries grow as powers of two. Recording is three relaxed atomic
//! RMWs (bucket, count+sum, max) with no locks and no allocation, so
//! histograms are safe to hit from the hottest paths. Quantiles are
//! estimated from the bucket boundaries at snapshot time: the reported
//! pXX is the upper edge of the bucket containing that quantile, an
//! upper bound that is at worst 2x the true value — plenty for the
//! order-of-magnitude questions latency histograms answer.
//!
//! Values are plain `u64`s with no unit attached; by convention series
//! named `*_us` record microseconds and `*_pct` record percentages. The
//! caller supplies the value, which is what makes recording *sim-clock
//! aware*: the discrete-event simulator feeds virtual microseconds into
//! the same histograms the thread runtime feeds wall-clock ones.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per possible bit length of a `u64`, so every
/// value maps to a bucket and nothing is clamped except by `u64::MAX`
/// itself (the final bucket is the overflow bucket).
pub const BUCKETS: usize = 64;

/// A lock-free, fixed-memory latency histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

/// Index of the bucket covering `value`: its bit length, so bucket `i`
/// holds values in `[2^(i-1), 2^i)` (bucket 0 holds only zero).
#[inline]
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Upper edge of bucket `i` (inclusive), used as the quantile estimate.
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        // The final bucket is the overflow bucket: unbounded above.
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation. Relaxed atomics throughout: histograms
    /// are diagnostics, not synchronization.
    #[inline]
    pub fn observe(&self, value: u64) {
        let i = bucket_index(value).min(BUCKETS - 1);
        self.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a wall-clock duration in microseconds.
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_micros() as u64);
    }

    /// Takes a point-in-time copy of the histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (bucket `i` covers `[2^(i-1), 2^i)`).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (exact, not bucketed).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Estimated value at quantile `q` (0.0–1.0): the upper edge of the
    /// bucket containing the `ceil(q * count)`-th observation. `None`
    /// when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // The true maximum is exact; never report an edge past it.
                return Some(bucket_upper(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Mean of all observations (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn zero_samples_has_no_quantiles() {
        let h = Histogram::new();
        let snap = h.snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.p50(), None);
        assert_eq!(snap.p99(), None);
        assert_eq!(snap.mean(), None);
        assert_eq!(snap.max, 0);
    }

    #[test]
    fn single_sample_quantiles_collapse() {
        let h = Histogram::new();
        h.observe(100);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.sum, 100);
        assert_eq!(snap.max, 100);
        // One sample: every quantile reports (at most) the max.
        assert_eq!(snap.p50(), Some(100));
        assert_eq!(snap.p99(), Some(100));
    }

    #[test]
    fn quantiles_track_distribution() {
        let h = Histogram::new();
        // 90 fast samples (~10 µs), 10 slow ones (~10 ms).
        for _ in 0..90 {
            h.observe(10);
        }
        for _ in 0..10 {
            h.observe(10_000);
        }
        let snap = h.snapshot();
        let p50 = snap.p50().unwrap();
        let p99 = snap.p99().unwrap();
        assert!(p50 < 32, "p50 {p50} should sit in the fast band");
        assert!(p99 >= 8192, "p99 {p99} should sit in the slow band");
        assert_eq!(snap.max, 10_000);
    }

    #[test]
    fn overflow_bucket_holds_huge_values() {
        let h = Histogram::new();
        h.observe(u64::MAX);
        h.observe(u64::MAX / 2);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.max, u64::MAX);
        assert_eq!(snap.buckets[BUCKETS - 1], 2);
        // The sum saturates by wrapping — count and max stay meaningful.
        assert_eq!(snap.p99(), Some(u64::MAX));
    }

    #[test]
    fn concurrent_recording_from_8_threads() {
        let h = Arc::new(Histogram::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let h = h.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    h.observe(t * 1000 + (i % 100));
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 80_000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 80_000);
        assert!(snap.max >= 7000 && snap.max < 7100);
    }
}
