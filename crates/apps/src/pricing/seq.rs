//! Sequential baseline: the same decomposition run inline.
//!
//! The scalability experiment's 1-worker point and all correctness tests
//! compare against this. It iterates the exact task inputs the parallel
//! app plans, so the result is bit-identical to a parallel run.

use super::tasks::{run_task, PricingApp, PricingResult};

/// Prices the app's contract sequentially, returning the same bracket a
/// complete parallel run produces.
pub fn price_sequential(app: &PricingApp) -> PricingResult {
    let mut acc = app.clone();
    for (task_id, input) in app.task_inputs().iter().enumerate() {
        let out = run_task(input);
        acc.absorb_output(task_id as u64, out);
    }
    acc.result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::model::{black_scholes_price, OptionSpec, OptionStyle};
    use crate::pricing::tasks::PricingApp;

    #[test]
    fn sequential_bracket_is_ordered() {
        let app = PricingApp::new(OptionSpec::paper_default(), 10, 20);
        let result = price_sequential(&app);
        assert!(result.high >= result.low, "{result:?}");
        assert!(result.low > 0.0);
    }

    #[test]
    fn european_sequential_matches_black_scholes() {
        let spec = OptionSpec {
            style: OptionStyle::European,
            dividend: 0.0,
            ..OptionSpec::paper_default()
        };
        // 40k simulations via the task machinery.
        let app = PricingApp::new(spec, 20, 1000);
        let result = price_sequential(&app);
        let bs = black_scholes_price(&spec);
        let rel = ((result.point() - bs) / bs).abs();
        assert!(rel < 0.05, "point {} vs bs {bs}", result.point());
        // European: high and low estimators coincide by construction.
        assert!((result.high - result.low).abs() < 1e-12);
    }

    #[test]
    fn sequential_is_deterministic() {
        let app = PricingApp::new(OptionSpec::paper_default(), 5, 10);
        assert_eq!(price_sequential(&app), price_sequential(&app));
    }
}
