//! Object identifiers.

use std::fmt;

/// An SNMP object identifier: a dotted sequence of arcs, ordered
/// lexicographically (MIB walk order).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid {
    arcs: Vec<u32>,
}

/// Error parsing a dotted OID string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OidParseError(pub String);

impl fmt::Display for OidParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid OID: {}", self.0)
    }
}

impl std::error::Error for OidParseError {}

impl Oid {
    /// Builds an OID from raw arcs.
    pub fn from_arcs(arcs: impl Into<Vec<u32>>) -> Oid {
        Oid { arcs: arcs.into() }
    }

    /// Parses a dotted string such as `"1.3.6.1.2.1.25.3.3.1.2"`.
    pub fn parse(s: &str) -> Result<Oid, OidParseError> {
        if s.is_empty() {
            return Err(OidParseError(s.to_owned()));
        }
        let arcs = s
            .split('.')
            .map(|part| part.parse::<u32>())
            .collect::<Result<Vec<_>, _>>()
            .map_err(|_| OidParseError(s.to_owned()))?;
        Ok(Oid { arcs })
    }

    /// The raw arcs.
    pub fn arcs(&self) -> &[u32] {
        &self.arcs
    }

    /// Number of arcs.
    pub fn len(&self) -> usize {
        self.arcs.len()
    }

    /// True for the empty OID.
    pub fn is_empty(&self) -> bool {
        self.arcs.is_empty()
    }

    /// Returns this OID with one more arc appended — `self.index`.
    pub fn child(&self, arc: u32) -> Oid {
        let mut arcs = self.arcs.clone();
        arcs.push(arc);
        Oid { arcs }
    }

    /// True when `self` is a (non-strict) prefix of `other`.
    pub fn is_prefix_of(&self, other: &Oid) -> bool {
        other.arcs.len() >= self.arcs.len() && other.arcs[..self.arcs.len()] == self.arcs[..]
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, arc) in self.arcs.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{arc}")?;
        }
        Ok(())
    }
}

/// Well-known OIDs used by the framework.
pub mod oids {
    use super::Oid;

    /// `hrProcessorLoad` (HOST-RESOURCES-MIB): average CPU load percentage
    /// over the last minute, per processor. The framework polls
    /// `hrProcessorLoad.1`.
    pub fn hr_processor_load() -> Oid {
        Oid::from_arcs(vec![1, 3, 6, 1, 2, 1, 25, 3, 3, 1, 2])
    }

    /// `hrProcessorLoad.1` — the first (only, in the paper's testbed)
    /// processor.
    pub fn hr_processor_load_1() -> Oid {
        hr_processor_load().child(1)
    }

    /// `hrMemorySize` (KB of physical memory).
    pub fn hr_memory_size() -> Oid {
        Oid::from_arcs(vec![1, 3, 6, 1, 2, 1, 25, 2, 2, 0])
    }

    /// `hrSystemNumUsers` — used to detect interactive logins.
    pub fn hr_system_num_users() -> Oid {
        Oid::from_arcs(vec![1, 3, 6, 1, 2, 1, 25, 1, 5, 0])
    }

    /// `sysDescr.0`.
    pub fn sys_descr() -> Oid {
        Oid::from_arcs(vec![1, 3, 6, 1, 2, 1, 1, 1, 0])
    }

    /// `sysUpTime.0` in TimeTicks (hundredths of a second).
    pub fn sys_uptime() -> Oid {
        Oid::from_arcs(vec![1, 3, 6, 1, 2, 1, 1, 3, 0])
    }

    /// Private enterprise arc for framework-specific variables
    /// (free memory in KB).
    pub fn acc_free_memory() -> Oid {
        Oid::from_arcs(vec![1, 3, 6, 1, 4, 1, 59999, 1, 1, 0])
    }

    /// Private enterprise arc: number of framework worker threads running.
    pub fn acc_worker_threads() -> Oid {
        Oid::from_arcs(vec![1, 3, 6, 1, 4, 1, 59999, 1, 2, 0])
    }

    /// Private enterprise arc: CPU percent consumed by the framework's own
    /// worker process. The inference engine subtracts this from
    /// `hrProcessorLoad` so the framework never reacts to its own work.
    pub fn acc_framework_load() -> Oid {
        Oid::from_arcs(vec![1, 3, 6, 1, 4, 1, 59999, 1, 3, 0])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let o = Oid::parse("1.3.6.1.2.1").unwrap();
        assert_eq!(o.arcs(), &[1, 3, 6, 1, 2, 1]);
        assert_eq!(o.to_string(), "1.3.6.1.2.1");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Oid::parse("").is_err());
        assert!(Oid::parse("1..3").is_err());
        assert!(Oid::parse("1.x.3").is_err());
        assert!(Oid::parse("-1.3").is_err());
    }

    #[test]
    fn ordering_is_mib_walk_order() {
        let a = Oid::parse("1.3.6.1").unwrap();
        let b = Oid::parse("1.3.6.1.2").unwrap();
        let c = Oid::parse("1.3.6.2").unwrap();
        assert!(a < b); // a parent precedes its children
        assert!(b < c); // deeper subtree precedes next sibling
    }

    #[test]
    fn prefix_relation() {
        let parent = Oid::parse("1.3.6").unwrap();
        let child = parent.child(1);
        assert!(parent.is_prefix_of(&child));
        assert!(parent.is_prefix_of(&parent));
        assert!(!child.is_prefix_of(&parent));
    }

    #[test]
    fn known_oids_are_valid() {
        assert_eq!(
            oids::hr_processor_load_1().to_string(),
            "1.3.6.1.2.1.25.3.3.1.2.1"
        );
        assert!(oids::hr_processor_load().is_prefix_of(&oids::hr_processor_load_1()));
    }
}
