//! The inference engine: threshold rules mapping CPU load to signals.
//!
//! The network management module's decision-making component (paper §4.4).
//! It keeps, per registered worker, the worker's believed state and the
//! recent sample trend, and decides which signal (if any) moves the worker
//! toward the state the current load calls for.
//!
//! The decision variable is the worker's **external** load: total CPU minus
//! the framework's own contribution (both polled over SNMP). Deciding on
//! total load would make the framework stop itself whenever a task pegs the
//! CPU; the paper's Fig. 10(a) shows compute spikes at 78–100% that do *not*
//! trigger signals, so the decision variable must exclude framework work.
//!
//! This module is pure (no threads, no clocks) and is reused verbatim by
//! the discrete-event simulator.

use std::collections::HashMap;

use crate::config::Thresholds;
use crate::rulebase::WorkerId;
use crate::signal::{Signal, WorkerState};

/// The state a given load level calls for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesiredState {
    /// Load in the idle band: the node may compute.
    Running,
    /// Load in the pause band: back off temporarily.
    Paused,
    /// Load in the stop band: back off and release resources.
    Stopped,
}

/// Classifies an external-load sample against the thresholds.
pub fn desired_for_load(load: u64, thresholds: Thresholds) -> DesiredState {
    if load < thresholds.idle_max {
        DesiredState::Running
    } else if load < thresholds.pause_max {
        DesiredState::Paused
    } else {
        DesiredState::Stopped
    }
}

/// The signal that moves a worker from `state` toward `desired`, if any.
///
/// Note the asymmetry the paper's protocol implies: a Stopped worker whose
/// node becomes *moderately* loaded is left stopped (we never start work on
/// a busy machine), and a Paused worker under heavy load is stopped so its
/// resources are fully released.
pub fn signal_toward(state: WorkerState, desired: DesiredState) -> Option<Signal> {
    match (state, desired) {
        (WorkerState::Stopped, DesiredState::Running) => Some(Signal::Start),
        (WorkerState::Paused, DesiredState::Running) => Some(Signal::Resume),
        (WorkerState::Running, DesiredState::Paused) => Some(Signal::Pause),
        (WorkerState::Running, DesiredState::Stopped) => Some(Signal::Stop),
        (WorkerState::Paused, DesiredState::Stopped) => Some(Signal::Stop),
        _ => None,
    }
}

#[derive(Debug, Clone)]
struct WorkerBelief {
    state: WorkerState,
    /// Last desired state observed, and how many consecutive samples agreed.
    trend: Option<(DesiredState, usize)>,
    /// Signal sent but not yet acknowledged; suppress duplicates meanwhile.
    in_flight: Option<Signal>,
}

/// Per-worker decision state for the whole cluster.
#[derive(Debug)]
pub struct InferenceEngine {
    thresholds: Thresholds,
    hysteresis: usize,
    workers: HashMap<WorkerId, WorkerBelief>,
}

impl InferenceEngine {
    /// Creates an engine with the given rules. `hysteresis` is the number
    /// of consecutive samples that must agree before a signal is emitted.
    pub fn new(thresholds: Thresholds, hysteresis: usize) -> InferenceEngine {
        InferenceEngine {
            thresholds,
            hysteresis: hysteresis.max(1),
            workers: HashMap::new(),
        }
    }

    /// Registers a worker; its initial state is Stopped (it has not loaded
    /// any application classes yet).
    pub fn register(&mut self, id: WorkerId) {
        self.workers.insert(
            id,
            WorkerBelief {
                state: WorkerState::Stopped,
                trend: None,
                in_flight: None,
            },
        );
    }

    /// Removes a worker (node left the cluster).
    pub fn unregister(&mut self, id: WorkerId) {
        self.workers.remove(&id);
    }

    /// Number of registered workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True when no workers are registered.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The engine's belief about a worker's state.
    pub fn state_of(&self, id: WorkerId) -> Option<WorkerState> {
        self.workers.get(&id).map(|w| w.state)
    }

    /// Feeds one external-load sample; returns the signal to send, if any.
    /// While a signal is unacknowledged no further signal is emitted for
    /// that worker (the paper's protocol is strictly request/ack per step).
    pub fn on_sample(&mut self, id: WorkerId, external_load: u64) -> Option<Signal> {
        let thresholds = self.thresholds;
        let hysteresis = self.hysteresis;
        let worker = self.workers.get_mut(&id)?;
        if worker.in_flight.is_some() {
            return None;
        }
        let desired = desired_for_load(external_load, thresholds);
        let run = match worker.trend {
            Some((d, n)) if d == desired => n + 1,
            _ => 1,
        };
        worker.trend = Some((desired, run));
        if run < hysteresis {
            return None;
        }
        let signal = signal_toward(worker.state, desired)?;
        worker.in_flight = Some(signal);
        Some(signal)
    }

    /// A worker acknowledged a signal, reporting its new state.
    pub fn on_ack(&mut self, id: WorkerId, new_state: WorkerState) {
        if let Some(worker) = self.workers.get_mut(&id) {
            worker.state = new_state;
            worker.in_flight = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(hysteresis: usize) -> (InferenceEngine, WorkerId) {
        let mut e = InferenceEngine::new(Thresholds::paper(), hysteresis);
        let id = WorkerId(1);
        e.register(id);
        (e, id)
    }

    #[test]
    fn bands_classify_as_in_the_paper() {
        let t = Thresholds::paper();
        assert_eq!(desired_for_load(0, t), DesiredState::Running);
        assert_eq!(desired_for_load(24, t), DesiredState::Running);
        assert_eq!(desired_for_load(25, t), DesiredState::Paused);
        assert_eq!(desired_for_load(49, t), DesiredState::Paused);
        assert_eq!(desired_for_load(50, t), DesiredState::Stopped);
        assert_eq!(desired_for_load(100, t), DesiredState::Stopped);
    }

    #[test]
    fn idle_node_gets_start() {
        let (mut e, id) = engine(1);
        assert_eq!(e.on_sample(id, 5), Some(Signal::Start));
    }

    #[test]
    fn in_flight_suppresses_duplicates_until_ack() {
        let (mut e, id) = engine(1);
        assert_eq!(e.on_sample(id, 5), Some(Signal::Start));
        assert_eq!(e.on_sample(id, 5), None, "unacked: no duplicate");
        e.on_ack(id, WorkerState::Running);
        assert_eq!(e.on_sample(id, 5), None, "already running");
    }

    #[test]
    fn full_paper_scenario() {
        // The scripted sequence of Figs. 9–11: start, hog the CPU (stop),
        // unload (restart), moderate load (pause), unload (resume).
        let (mut e, id) = engine(1);
        assert_eq!(e.on_sample(id, 2), Some(Signal::Start));
        e.on_ack(id, WorkerState::Running);
        assert_eq!(e.on_sample(id, 100), Some(Signal::Stop));
        e.on_ack(id, WorkerState::Stopped);
        assert_eq!(e.on_sample(id, 3), Some(Signal::Start));
        e.on_ack(id, WorkerState::Running);
        assert_eq!(e.on_sample(id, 46), Some(Signal::Pause));
        e.on_ack(id, WorkerState::Paused);
        assert_eq!(e.on_sample(id, 4), Some(Signal::Resume));
        e.on_ack(id, WorkerState::Running);
    }

    #[test]
    fn stopped_node_under_moderate_load_stays_stopped() {
        let (mut e, id) = engine(1);
        assert_eq!(e.on_sample(id, 40), None);
        assert_eq!(e.state_of(id), Some(WorkerState::Stopped));
    }

    #[test]
    fn paused_node_under_heavy_load_is_stopped() {
        let (mut e, id) = engine(1);
        e.on_sample(id, 1);
        e.on_ack(id, WorkerState::Running);
        e.on_sample(id, 30);
        e.on_ack(id, WorkerState::Paused);
        assert_eq!(e.on_sample(id, 90), Some(Signal::Stop));
    }

    #[test]
    fn hysteresis_requires_consecutive_agreement() {
        let (mut e, id) = engine(3);
        assert_eq!(e.on_sample(id, 5), None);
        assert_eq!(e.on_sample(id, 5), None);
        assert_eq!(e.on_sample(id, 5), Some(Signal::Start));
    }

    #[test]
    fn hysteresis_resets_on_band_change() {
        let (mut e, id) = engine(2);
        assert_eq!(e.on_sample(id, 5), None);
        assert_eq!(e.on_sample(id, 60), None, "band changed: trend resets");
        assert_eq!(e.on_sample(id, 5), None);
        assert_eq!(e.on_sample(id, 5), Some(Signal::Start));
    }

    #[test]
    fn unknown_worker_ignored() {
        let mut e = InferenceEngine::new(Thresholds::paper(), 1);
        assert_eq!(e.on_sample(WorkerId(99), 0), None);
        e.on_ack(WorkerId(99), WorkerState::Running); // no panic
        assert!(e.is_empty());
    }

    #[test]
    fn unregister_removes() {
        let (mut e, id) = engine(1);
        assert_eq!(e.len(), 1);
        e.unregister(id);
        assert!(e.state_of(id).is_none());
    }

    #[test]
    fn signal_toward_exhaustive() {
        use DesiredState as D;
        use WorkerState as W;
        assert_eq!(signal_toward(W::Stopped, D::Running), Some(Signal::Start));
        assert_eq!(signal_toward(W::Stopped, D::Paused), None);
        assert_eq!(signal_toward(W::Stopped, D::Stopped), None);
        assert_eq!(signal_toward(W::Running, D::Running), None);
        assert_eq!(signal_toward(W::Running, D::Paused), Some(Signal::Pause));
        assert_eq!(signal_toward(W::Running, D::Stopped), Some(Signal::Stop));
        assert_eq!(signal_toward(W::Paused, D::Running), Some(Signal::Resume));
        assert_eq!(signal_toward(W::Paused, D::Paused), None);
        assert_eq!(signal_toward(W::Paused, D::Stopped), Some(Signal::Stop));
    }
}
