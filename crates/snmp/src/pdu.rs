//! Protocol data units and typed values.

use std::fmt;

use crate::oid::Oid;

/// The protocol version byte we speak (community-based v2c).
pub const VERSION_2C: u8 = 1;

/// A typed SNMP value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnmpValue {
    /// Signed integer (INTEGER).
    Int(i64),
    /// Octet string.
    Str(Vec<u8>),
    /// Object identifier value.
    Oid(Oid),
    /// Null (used in request varbinds).
    Null,
    /// Monotone counter.
    Counter(u64),
    /// Instantaneous gauge (e.g. CPU load percent).
    Gauge(u64),
    /// Hundredths of a second since agent start.
    TimeTicks(u64),
    /// GETNEXT walked past the end of the MIB.
    EndOfMibView,
    /// GET addressed a variable the agent does not expose.
    NoSuchObject,
}

impl SnmpValue {
    /// Convenience: the value as a `u64`, for gauges/counters/ints.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            SnmpValue::Int(v) if *v >= 0 => Some(*v as u64),
            SnmpValue::Counter(v) | SnmpValue::Gauge(v) | SnmpValue::TimeTicks(v) => Some(*v),
            _ => None,
        }
    }

    /// Convenience: the value as UTF-8 text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            SnmpValue::Str(bytes) => std::str::from_utf8(bytes).ok(),
            _ => None,
        }
    }
}

impl fmt::Display for SnmpValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnmpValue::Int(v) => write!(f, "{v}"),
            SnmpValue::Str(bytes) => match std::str::from_utf8(bytes) {
                Ok(s) => write!(f, "{s:?}"),
                Err(_) => write!(f, "<{} bytes>", bytes.len()),
            },
            SnmpValue::Oid(oid) => write!(f, "{oid}"),
            SnmpValue::Null => write!(f, "null"),
            SnmpValue::Counter(v) => write!(f, "Counter({v})"),
            SnmpValue::Gauge(v) => write!(f, "Gauge({v})"),
            SnmpValue::TimeTicks(v) => write!(f, "TimeTicks({v})"),
            SnmpValue::EndOfMibView => write!(f, "endOfMibView"),
            SnmpValue::NoSuchObject => write!(f, "noSuchObject"),
        }
    }
}

/// PDU kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PduType {
    /// GET request.
    Get,
    /// GETNEXT request (MIB walk step).
    GetNext,
    /// Response to any request.
    Response,
    /// SET request.
    Set,
    /// Unsolicited trap notification.
    Trap,
}

impl PduType {
    /// The BER application tag for this PDU kind.
    pub fn tag(self) -> u8 {
        match self {
            PduType::Get => 0xA0,
            PduType::GetNext => 0xA1,
            PduType::Response => 0xA2,
            PduType::Set => 0xA3,
            PduType::Trap => 0xA7,
        }
    }

    /// Inverse of [`PduType::tag`].
    pub fn from_tag(tag: u8) -> Option<PduType> {
        match tag {
            0xA0 => Some(PduType::Get),
            0xA1 => Some(PduType::GetNext),
            0xA2 => Some(PduType::Response),
            0xA3 => Some(PduType::Set),
            0xA7 => Some(PduType::Trap),
            _ => None,
        }
    }
}

/// Error status carried in response PDUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorStatus {
    /// Success.
    NoError,
    /// Response would not fit.
    TooBig,
    /// Requested variable does not exist.
    NoSuchName,
    /// SET value had the wrong type/range.
    BadValue,
    /// Variable is not writable.
    ReadOnly,
    /// Any other failure.
    GenErr,
}

impl ErrorStatus {
    /// Numeric wire value.
    pub fn code(self) -> i64 {
        match self {
            ErrorStatus::NoError => 0,
            ErrorStatus::TooBig => 1,
            ErrorStatus::NoSuchName => 2,
            ErrorStatus::BadValue => 3,
            ErrorStatus::ReadOnly => 4,
            ErrorStatus::GenErr => 5,
        }
    }

    /// Inverse of [`ErrorStatus::code`].
    pub fn from_code(code: i64) -> Option<ErrorStatus> {
        match code {
            0 => Some(ErrorStatus::NoError),
            1 => Some(ErrorStatus::TooBig),
            2 => Some(ErrorStatus::NoSuchName),
            3 => Some(ErrorStatus::BadValue),
            4 => Some(ErrorStatus::ReadOnly),
            5 => Some(ErrorStatus::GenErr),
            _ => None,
        }
    }
}

/// A protocol data unit: request id, error info and variable bindings.
#[derive(Debug, Clone, PartialEq)]
pub struct Pdu {
    /// Correlates responses with requests.
    pub request_id: i64,
    /// Error status (responses).
    pub error_status: ErrorStatus,
    /// 1-based index of the varbind in error, 0 if none.
    pub error_index: i64,
    /// The variable bindings.
    pub varbinds: Vec<(Oid, SnmpValue)>,
}

impl Pdu {
    /// A request PDU for the given OIDs (Null-valued varbinds).
    pub fn request(request_id: i64, oids: &[Oid]) -> Pdu {
        Pdu {
            request_id,
            error_status: ErrorStatus::NoError,
            error_index: 0,
            varbinds: oids.iter().map(|o| (o.clone(), SnmpValue::Null)).collect(),
        }
    }
}

/// A full SNMP message: version, community string, PDU type and PDU.
#[derive(Debug, Clone, PartialEq)]
pub struct Message {
    /// Protocol version ([`VERSION_2C`]).
    pub version: u8,
    /// Community string — the paper-era access-control mechanism.
    pub community: String,
    /// What kind of PDU this is.
    pub pdu_type: PduType,
    /// The PDU body.
    pub pdu: Pdu,
}

/// Errors surfaced by the SNMP stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnmpError {
    /// Malformed bytes on the wire.
    Decode(String),
    /// The transport failed (peer gone, timeout).
    Transport(String),
    /// The agent rejected the community string.
    BadCommunity,
    /// The agent answered with an error status.
    Agent(ErrorStatus),
    /// A response arrived with the wrong request id.
    RequestIdMismatch,
    /// The requested variable does not exist.
    NoSuchObject,
}

impl fmt::Display for SnmpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnmpError::Decode(msg) => write!(f, "decode error: {msg}"),
            SnmpError::Transport(msg) => write!(f, "transport error: {msg}"),
            SnmpError::BadCommunity => write!(f, "bad community string"),
            SnmpError::Agent(status) => write!(f, "agent error: {status:?}"),
            SnmpError::RequestIdMismatch => write!(f, "response id does not match request"),
            SnmpError::NoSuchObject => write!(f, "no such object"),
        }
    }
}

impl std::error::Error for SnmpError {}

/// Separator between the community string proper and an appended trace
/// context in [`community_with_context`].
pub const CONTEXT_SEP: &str = "@@";

/// Appends a distributed trace context to a community string:
/// `"<community>@@<trace_hex>:<span_hex>"`. SNMPv2c has no other
/// extensible per-message field, and agents that don't understand the
/// suffix reject the whole string — exactly the
/// fail-closed behaviour a community check should have.
pub fn community_with_context(community: &str, ctx: &acc_telemetry::TraceContext) -> String {
    format!("{community}{CONTEXT_SEP}{}", ctx.encode())
}

/// Splits a possibly context-carrying community string back into the
/// community proper and the trace context, if a well-formed one is
/// appended. A suffix that does not parse as a context is treated as
/// part of the community (so a community that legitimately contains
/// `@@` still compares correctly when no context was added).
pub fn split_community(full: &str) -> (&str, Option<acc_telemetry::TraceContext>) {
    if let Some((base, suffix)) = full.rsplit_once(CONTEXT_SEP) {
        if let Some(ctx) = acc_telemetry::TraceContext::parse(suffix) {
            return (base, Some(ctx));
        }
    }
    (full, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pdu_type_tags_roundtrip() {
        for ty in [
            PduType::Get,
            PduType::GetNext,
            PduType::Response,
            PduType::Set,
            PduType::Trap,
        ] {
            assert_eq!(PduType::from_tag(ty.tag()), Some(ty));
        }
        assert_eq!(PduType::from_tag(0x30), None);
    }

    #[test]
    fn error_status_codes_roundtrip() {
        for e in [
            ErrorStatus::NoError,
            ErrorStatus::TooBig,
            ErrorStatus::NoSuchName,
            ErrorStatus::BadValue,
            ErrorStatus::ReadOnly,
            ErrorStatus::GenErr,
        ] {
            assert_eq!(ErrorStatus::from_code(e.code()), Some(e));
        }
        assert_eq!(ErrorStatus::from_code(99), None);
    }

    #[test]
    fn value_conversions() {
        assert_eq!(SnmpValue::Gauge(42).as_u64(), Some(42));
        assert_eq!(SnmpValue::Int(-1).as_u64(), None);
        assert_eq!(SnmpValue::Str(b"hi".to_vec()).as_text(), Some("hi"));
        assert_eq!(SnmpValue::Null.as_text(), None);
    }

    #[test]
    fn request_builder_nulls_varbinds() {
        let oid = Oid::parse("1.3").unwrap();
        let pdu = Pdu::request(7, std::slice::from_ref(&oid));
        assert_eq!(pdu.request_id, 7);
        assert_eq!(pdu.varbinds, vec![(oid, SnmpValue::Null)]);
    }

    #[test]
    fn community_context_roundtrips() {
        let ctx = acc_telemetry::TraceContext {
            trace_id: 0xabc123,
            span_id: 0x77,
        };
        let full = community_with_context("public", &ctx);
        assert_eq!(full, "public@@abc123:77");
        assert_eq!(split_community(&full), ("public", Some(ctx)));
        // No context appended: the whole string is the community.
        assert_eq!(split_community("public"), ("public", None));
        // A community that happens to contain the separator but no valid
        // context stays intact.
        assert_eq!(split_community("we@@ird"), ("we@@ird", None));
        // And one that contains the separator AND carries a context
        // splits at the last separator only.
        let tricky = community_with_context("we@@ird", &ctx);
        assert_eq!(split_community(&tricky), ("we@@ird", Some(ctx)));
    }
}
