//! Baseline — job-level parallelism (the Condor model of paper §2).
//!
//! The paper contrasts two approaches to opportunistic computing:
//! *job-level parallelism* (Condor): the entire job runs on one idle
//! machine; when that machine becomes busy the job is checkpointed and
//! migrated elsewhere. *Adaptive parallelism* (this framework): the job is
//! decomposed into tasks spread across all idle machines; an eviction
//! costs at most the current task.
//!
//! This module implements the job-level baseline so the two can be
//! compared quantitatively under identical load churn.

use acc_cluster::{LoadTrace, NodeSpec};
use acc_core::Thresholds;

use crate::cluster::{simulate, SimConfig};
use crate::model::AppProfile;

/// Cost parameters of the checkpoint/migrate machinery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobLevelCosts {
    /// Writing the checkpoint image on eviction, ms.
    pub checkpoint_ms: f64,
    /// Transferring + restoring the image on the new machine, ms.
    pub migrate_ms: f64,
    /// Scheduler poll/matchmaking interval, ms.
    pub poll_ms: f64,
}

impl Default for JobLevelCosts {
    fn default() -> Self {
        JobLevelCosts {
            checkpoint_ms: 2_000.0,
            migrate_ms: 3_000.0,
            poll_ms: 250.0,
        }
    }
}

/// Outcome of a job-level (single-job, migrating) run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobLevelOutcome {
    /// Wall time to complete the job, ms.
    pub completion_ms: f64,
    /// Number of checkpoint+migrate events.
    pub migrations: u64,
    /// True if the job finished within the horizon.
    pub complete: bool,
}

/// Simulates one job of `work_ms` (reference-machine milliseconds) under
/// job-level parallelism: the job occupies exactly one idle machine at a
/// time and is checkpointed/migrated when its host enters the stop band.
pub fn simulate_job_level(
    work_ms: f64,
    workers: &[NodeSpec],
    traces: &[Option<LoadTrace>],
    costs: JobLevelCosts,
    horizon_ms: f64,
) -> JobLevelOutcome {
    assert_eq!(workers.len(), traces.len());
    let thresholds = Thresholds::paper();
    let reference = 800.0;
    let step = costs.poll_ms.max(1.0);
    let mut t = 0.0f64;
    let mut remaining = work_ms;
    let mut host: Option<usize> = None;
    let mut migrations = 0u64;
    let mut ever_placed = false;

    let load_at = |w: usize, t: f64| -> u64 {
        traces[w]
            .as_ref()
            .map(|tr| tr.level_at(t as u64))
            .unwrap_or(0)
    };

    while remaining > 0.0 && t < horizon_ms {
        match host {
            None => {
                // Matchmaking: place the job on the first idle machine.
                if let Some(w) = (0..workers.len()).find(|&w| load_at(w, t) < thresholds.idle_max) {
                    host = Some(w);
                    if ever_placed {
                        // Restore from checkpoint on the new machine.
                        t += costs.migrate_ms;
                    }
                    ever_placed = true;
                } else {
                    t += step;
                }
            }
            Some(w) => {
                let load = load_at(w, t);
                if load >= thresholds.pause_max {
                    // Eviction: checkpoint and leave.
                    t += costs.checkpoint_ms;
                    host = None;
                    migrations += 1;
                    continue;
                }
                // One scheduler interval of progress at this machine's
                // speed, shared with whatever background load exists.
                let speed = workers[w].speed_mhz as f64 / reference;
                let availability = (1.0 - load as f64 / 100.0).max(0.05);
                remaining -= step * speed * availability;
                t += step;
            }
        }
    }
    JobLevelOutcome {
        completion_ms: t,
        migrations,
        complete: remaining <= 0.0,
    }
}

/// One row of the baseline comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRow {
    /// Application label.
    pub app: String,
    /// Adaptive parallelism (this framework) completion, ms.
    pub adaptive_ms: f64,
    /// Job-level parallelism completion, ms.
    pub job_level_ms: f64,
    /// Migrations the job-level run paid.
    pub migrations: u64,
}

/// Compares the two models on the application's own testbed, with load
/// simulator 2 hitting each worker in turn for `churn_period_ms` (a
/// round-robin eviction pattern).
pub fn run_baseline_comparison(profile: &AppProfile, churn_period_ms: u64) -> BaselineRow {
    let n = profile.testbed.worker_count();
    // Round-robin interference: worker w is hogged during its slice of
    // each churn cycle.
    let traces: Vec<Option<LoadTrace>> = (0..n)
        .map(|w| {
            let mut phases = Vec::new();
            let slice = churn_period_ms / n as u64;
            let total = 3_600_000u64;
            let mut at = 0;
            while at < total {
                // Worker w is hogged during its slice of each churn cycle.
                phases.push(acc_cluster::LoadPhase {
                    at_ms: at + w as u64 * slice,
                    level: 100,
                    kind: acc_cluster::TrafficKind::CpuHog,
                });
                phases.push(acc_cluster::LoadPhase {
                    at_ms: at + (w as u64 + 1) * slice,
                    level: 0,
                    kind: acc_cluster::TrafficKind::Idle,
                });
                at += churn_period_ms;
            }
            Some(LoadTrace::new(phases, total))
        })
        .collect();

    let mut cfg = SimConfig::new(profile.clone(), n);
    cfg.traces = traces.clone();
    cfg.horizon_ms = 3_600_000.0;
    let adaptive = simulate(cfg);
    assert!(adaptive.complete, "adaptive run must complete under churn");

    let job = simulate_job_level(
        profile.serial_compute_ms(),
        &profile.testbed.workers,
        &traces,
        JobLevelCosts::default(),
        3_600_000.0,
    );
    BaselineRow {
        app: profile.name.clone(),
        adaptive_ms: adaptive.times.parallel_ms,
        job_level_ms: job.completion_ms,
        migrations: job.migrations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_cluster::{LoadPhase, TrafficKind};

    fn idle_workers(n: usize) -> (Vec<NodeSpec>, Vec<Option<LoadTrace>>) {
        let workers: Vec<NodeSpec> = (0..n)
            .map(|i| NodeSpec::new(format!("w{i}"), 800, 256))
            .collect();
        let traces = vec![None; n];
        (workers, traces)
    }

    #[test]
    fn job_level_on_idle_machine_is_just_the_work() {
        let (workers, traces) = idle_workers(1);
        let out = simulate_job_level(10_000.0, &workers, &traces, JobLevelCosts::default(), 1e9);
        assert!(out.complete);
        assert_eq!(out.migrations, 0);
        assert!((out.completion_ms - 10_000.0).abs() < 500.0, "{out:?}");
    }

    #[test]
    fn job_level_pays_for_evictions() {
        // The only machine is hogged in the middle of the run.
        let (workers, _) = idle_workers(2);
        let trace0 = LoadTrace::new(
            vec![
                LoadPhase {
                    at_ms: 0,
                    level: 0,
                    kind: TrafficKind::Idle,
                },
                LoadPhase {
                    at_ms: 2_000,
                    level: 100,
                    kind: TrafficKind::CpuHog,
                },
                LoadPhase {
                    at_ms: 30_000,
                    level: 0,
                    kind: TrafficKind::Idle,
                },
            ],
            3_600_000,
        );
        let traces = vec![Some(trace0), None];
        let out = simulate_job_level(10_000.0, &workers, &traces, JobLevelCosts::default(), 1e9);
        assert!(out.complete);
        assert_eq!(out.migrations, 1, "one eviction → one migration");
        // Work (10 s) + checkpoint (2 s) + migrate (3 s), modulo stepping.
        assert!(
            out.completion_ms > 14_000.0 && out.completion_ms < 16_500.0,
            "{out:?}"
        );
    }

    #[test]
    fn job_level_slower_than_slowest_machine_never() {
        let (workers, traces) = idle_workers(3);
        let out = simulate_job_level(5_000.0, &workers, &traces, JobLevelCosts::default(), 1e9);
        // Only one machine is ever used: no speedup from the other two.
        assert!(out.completion_ms >= 5_000.0 - 500.0);
    }

    #[test]
    fn adaptive_beats_job_level_under_churn() {
        for profile in [AppProfile::ray_tracing(), AppProfile::prefetch()] {
            let row = run_baseline_comparison(&profile, 60_000);
            assert!(
                row.adaptive_ms < row.job_level_ms,
                "{}: adaptive {} vs job-level {}",
                row.app,
                row.adaptive_ms,
                row.job_level_ms
            );
        }
    }

    #[test]
    fn deterministic() {
        let a = run_baseline_comparison(&AppProfile::prefetch(), 60_000);
        let b = run_baseline_comparison(&AppProfile::prefetch(), 60_000);
        assert_eq!(a, b);
    }
}
