//! Cross-crate protocol integration: SNMP over real TCP, the rule-base
//! protocol over real TCP, federation discovery of the space, and the
//! remote-configuration engine — the deployment-shaped paths.

use std::sync::Arc;
use std::time::{Duration, Instant};

use adaptive_spaces::cluster::{Node, NodeSpec};
use adaptive_spaces::federation::{
    Attributes, DiscoveryBus, LookupService, Registrar, ServiceItem,
};
use adaptive_spaces::framework::rulebase::{self, client_register, RuleBaseServer};
use adaptive_spaces::framework::{RuleMessage, Signal, WorkerState};
use adaptive_spaces::snmp::{
    host_resources_mib, oids, transport::TcpAgentServer, transport::TcpTransport, Agent, Manager,
    Mib, SnmpValue,
};
use adaptive_spaces::space::Space;

#[test]
fn snmp_over_tcp_polls_live_node_state() {
    // A node whose load we change mid-test, exported over a real socket.
    let node = Node::new(NodeSpec::new("tcp-node", 800, 256));
    let n1 = node.clone();
    let n2 = node.clone();
    let n3 = node.clone();
    let mut mib: Mib = host_resources_mib(
        "tcp-node".into(),
        256 * 1024,
        move || n1.cpu_load(),
        move || n2.free_memory_kb(),
        move || n3.uptime_ticks(),
    );
    let load = node.load();
    mib.register_gauge(oids::acc_framework_load(), move || {
        load.framework_effective()
    });
    let server = TcpAgentServer::spawn(Arc::new(Agent::new("public", mib))).unwrap();
    let session =
        Manager::new("public").session(Box::new(TcpTransport::connect(server.addr()).unwrap()));

    assert_eq!(
        session.get(&oids::hr_processor_load_1()).unwrap(),
        SnmpValue::Gauge(0)
    );
    node.load().set_background(73);
    assert_eq!(
        session.get(&oids::hr_processor_load_1()).unwrap(),
        SnmpValue::Gauge(73)
    );
    // Walk the whole MIB over the wire.
    let walked = session
        .walk(&adaptive_spaces::snmp::Oid::from_arcs(vec![1]))
        .unwrap();
    assert!(walked.len() >= 6);
}

#[test]
fn rulebase_over_tcp_full_protocol() {
    let acked = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let acked2 = acked.clone();
    let server = RuleBaseServer::new(Arc::new(move |id, msg| {
        if let RuleMessage::Ack { signal, new_state } = msg {
            acked2.lock().push((id, signal, new_state));
        }
    }));
    let listener = rulebase::tcp::RuleBaseTcpListener::spawn(server.clone()).unwrap();

    // Three workers connect concurrently.
    let mut clients = Vec::new();
    for i in 0..3 {
        let duplex = rulebase::tcp::connect(listener.addr()).unwrap();
        let id = client_register(&duplex, &format!("w{i}"), Duration::from_secs(5)).unwrap();
        clients.push((id, duplex));
    }
    let begun = Instant::now();
    while server.workers().len() < 3 && begun.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(server.workers().len(), 3);

    // Signal each; each acks.
    for (id, duplex) in &clients {
        assert!(server.send_signal(*id, Signal::Start));
        match duplex.recv_timeout(Duration::from_secs(2)) {
            Some(RuleMessage::Signal { signal }) => assert_eq!(signal, Signal::Start),
            other => panic!("expected signal, got {other:?}"),
        }
        duplex.send(RuleMessage::Ack {
            signal: Signal::Start,
            new_state: WorkerState::Running,
        });
    }
    let begun = Instant::now();
    while acked.lock().len() < 3 && begun.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(acked.lock().len(), 3);

    // One worker leaves; the registry shrinks.
    clients[0].1.send(RuleMessage::Bye);
    let begun = Instant::now();
    while server.workers().len() > 2 && begun.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(2));
    }
    assert_eq!(server.workers().len(), 2);
}

#[test]
fn space_travels_through_federation_as_a_proxy() {
    let bus = DiscoveryBus::new();
    bus.announce(LookupService::new("lus-a"));
    bus.announce(LookupService::new("lus-b"));

    let space = Space::new("federated-space");
    space
        .write(
            adaptive_spaces::space::Tuple::build("greeting")
                .field("text", "hello")
                .done(),
        )
        .unwrap();

    let mut registrar = Registrar::join(
        &bus,
        ServiceItem::new(
            "JavaSpaces",
            Attributes::build().set("kind", "tuple-space").done(),
            space.clone(),
        ),
        Some(Duration::from_secs(30)),
    )
    .unwrap();
    assert_eq!(registrar.len(), 2);

    // A client discovers a lookup, finds the space, and reads through the
    // downloaded proxy.
    let lookup = bus.discover_named("lus-b").unwrap();
    let found = lookup.lookup(&Attributes::build().set("kind", "tuple-space").done());
    assert_eq!(found.len(), 1);
    let proxy: Arc<Space> = found[0].proxy().unwrap();
    let got = proxy
        .read_if_exists(&adaptive_spaces::space::Template::of_type("greeting"))
        .unwrap()
        .unwrap();
    assert_eq!(got.get_str("text"), Some("hello"));

    registrar.cancel_all();
    assert!(bus.discover_named("lus-a").unwrap().is_empty());
}

#[test]
fn trap_driven_adaptation_extension() {
    // Extension path: instead of polling, the worker-agent pushes a trap
    // whenever its external load crosses a threshold band; the inference
    // engine consumes the traps and produces the same signal sequence the
    // polling loop would.
    use adaptive_spaces::framework::{InferenceEngine, Thresholds, WorkerId};
    use adaptive_spaces::snmp::{ThresholdWatch, TrapSender};
    use std::sync::atomic::{AtomicU64, Ordering};

    let (sender, rx) = TrapSender::channel("public");
    let external = Arc::new(AtomicU64::new(0));
    let external2 = external.clone();
    let watch = ThresholdWatch::spawn(
        sender,
        oids::hr_processor_load_1(),
        vec![25, 50],
        Duration::from_millis(5),
        move || external2.load(Ordering::Relaxed),
    );

    let mut engine = InferenceEngine::new(Thresholds::paper(), 1);
    let id = WorkerId(1);
    engine.register(id);
    let mut signals = Vec::new();
    let mut drive = |engine: &mut InferenceEngine| {
        // Apply one trap to the engine, acking immediately.
        let msg = rx.recv_timeout(Duration::from_secs(2)).expect("trap");
        let load = msg.pdu.varbinds[0].1.as_u64().unwrap();
        if let Some(sig) = engine.on_sample(id, load) {
            let next = engine.state_of(id).unwrap().apply(sig).unwrap();
            engine.on_ack(id, next);
            signals.push(sig);
        }
    };

    drive(&mut engine); // initial band 0 → Start
    external.store(40, Ordering::Relaxed);
    drive(&mut engine); // pause band → Pause
    external.store(95, Ordering::Relaxed);
    drive(&mut engine); // stop band → Stop
    external.store(0, Ordering::Relaxed);
    drive(&mut engine); // idle again → Start

    watch.stop();
    assert_eq!(
        signals,
        vec![Signal::Start, Signal::Pause, Signal::Stop, Signal::Start]
    );
}

#[test]
fn loader_detects_tampered_bundles_end_to_end() {
    use adaptive_spaces::framework::{BundleServer, CodeBundle, ExecutorRegistry};
    use adaptive_spaces::framework::{ExecError, TaskEntry};

    struct Nop;
    impl adaptive_spaces::framework::TaskExecutor for Nop {
        fn execute(&self, _: &TaskEntry) -> Result<Vec<u8>, ExecError> {
            Ok(Vec::new())
        }
    }

    let server = BundleServer::new(Duration::from_millis(1), Duration::ZERO);
    server.publish(CodeBundle::synthetic("app", 3, 16));
    let registry = ExecutorRegistry::new();
    registry.register("app", Arc::new(Nop));

    // Normal fetch+link works and reports a transfer cost.
    let (bundle, cost) = server.fetch("app").unwrap();
    assert!(cost >= Duration::from_millis(1));
    assert!(registry.link(&bundle).is_ok());

    // A corrupted transfer is rejected at link time.
    let mut tampered = bundle.clone();
    tampered.bytes[100] ^= 0x01;
    assert!(registry.link(&tampered).is_err());
}
