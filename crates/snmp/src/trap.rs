//! SNMP traps: agent-initiated notifications.
//!
//! Polling (the paper's mechanism) asks every node "how busy are you?" at
//! a fixed cadence; traps invert the arrow — the worker-agent notifies the
//! manager the moment a watched gauge crosses a band boundary. This module
//! provides the trap path as an extension: a [`TrapSender`] bound to a
//! sink, a [`TrapCollector`] receiving traps over TCP, and a
//! [`ThresholdWatch`] that samples a gauge and emits a trap on each band
//! change.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use crate::codec::{decode_message, encode_message};
use crate::oid::Oid;
use crate::pdu::{ErrorStatus, Message, Pdu, PduType, SnmpError, SnmpValue, VERSION_2C};

/// Where encoded trap frames go.
pub type TrapSink = Arc<dyn Fn(Vec<u8>) + Send + Sync>;

/// Agent-side trap emitter.
#[derive(Clone)]
pub struct TrapSender {
    community: String,
    sink: TrapSink,
}

impl std::fmt::Debug for TrapSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrapSender")
            .field("community", &self.community)
            .finish()
    }
}

impl TrapSender {
    /// Creates a sender delivering frames to `sink`.
    pub fn new(community: impl Into<String>, sink: TrapSink) -> TrapSender {
        TrapSender {
            community: community.into(),
            sink,
        }
    }

    /// A sender that pushes decoded messages into a channel (in-process
    /// delivery). Returns the receiver alongside.
    pub fn channel(community: impl Into<String>) -> (TrapSender, mpsc::Receiver<Message>) {
        let (tx, rx) = mpsc::channel();
        let sender = TrapSender::new(
            community,
            Arc::new(move |bytes: Vec<u8>| {
                if let Ok(msg) = decode_message(&bytes) {
                    let _ = tx.send(msg);
                }
            }),
        );
        (sender, rx)
    }

    /// A sender that writes length-prefixed frames to a TCP collector.
    pub fn tcp(community: impl Into<String>, addr: SocketAddr) -> std::io::Result<TrapSender> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let stream = parking_lot::Mutex::new(stream);
        Ok(TrapSender::new(
            community,
            Arc::new(move |bytes: Vec<u8>| {
                let mut stream = stream.lock();
                let _ = stream.write_all(&(bytes.len() as u32).to_le_bytes());
                let _ = stream.write_all(&bytes);
                let _ = stream.flush();
            }),
        ))
    }

    /// Emits one trap carrying the given varbinds.
    pub fn send(&self, varbinds: Vec<(Oid, SnmpValue)>) {
        let msg = Message {
            version: VERSION_2C,
            community: self.community.clone(),
            pdu_type: PduType::Trap,
            pdu: Pdu {
                request_id: 0,
                error_status: ErrorStatus::NoError,
                error_index: 0,
                varbinds,
            },
        };
        (self.sink)(encode_message(&msg));
    }
}

/// Manager-side TCP trap collector: accepts agent connections and fans
/// received traps into a channel.
#[derive(Debug)]
pub struct TrapCollector {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    rx: mpsc::Receiver<Message>,
}

impl TrapCollector {
    /// Binds an ephemeral loopback port and starts collecting.
    pub fn spawn(community: impl Into<String>) -> std::io::Result<TrapCollector> {
        let community = community.into();
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let (tx, rx) = mpsc::channel::<Message>();
        let accept_thread = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(mut stream) = stream else { continue };
                let tx = tx.clone();
                let community = community.clone();
                std::thread::spawn(move || loop {
                    let mut len_buf = [0u8; 4];
                    if stream.read_exact(&mut len_buf).is_err() {
                        break;
                    }
                    let len = u32::from_le_bytes(len_buf) as usize;
                    if len > 1 << 16 {
                        break;
                    }
                    let mut body = vec![0u8; len];
                    if stream.read_exact(&mut body).is_err() {
                        break;
                    }
                    match decode_message(&body) {
                        Ok(msg) if msg.pdu_type == PduType::Trap && msg.community == community => {
                            let _ = tx.send(msg);
                        }
                        _ => {} // wrong community or malformed: drop silently
                    }
                });
            }
        });
        Ok(TrapCollector {
            addr,
            stop,
            accept_thread: Some(accept_thread),
            rx,
        })
    }

    /// The address agents send traps to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the next trap.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Message, SnmpError> {
        self.rx
            .recv_timeout(timeout)
            .map_err(|e| SnmpError::Transport(e.to_string()))
    }
}

impl Drop for TrapCollector {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

/// Samples a gauge and emits a trap whenever its value moves into a
/// different band. Bands are the half-open intervals between the given
/// ascending boundaries — pass the framework's 25/50 thresholds to get
/// run/pause/stop band-crossing notifications.
#[derive(Debug)]
pub struct ThresholdWatch {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ThresholdWatch {
    /// Starts watching. `gauge` is sampled every `interval`; a trap with
    /// `(oid, Gauge(value))` is sent on every band change (and once for
    /// the initial band).
    pub fn spawn(
        sender: TrapSender,
        oid: Oid,
        boundaries: Vec<u64>,
        interval: Duration,
        gauge: impl Fn() -> u64 + Send + 'static,
    ) -> ThresholdWatch {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let thread = std::thread::spawn(move || {
            let band_of = |v: u64| boundaries.iter().filter(|&&b| v >= b).count();
            let mut last_band: Option<usize> = None;
            while !stop2.load(Ordering::SeqCst) {
                let value = gauge();
                let band = band_of(value);
                if last_band != Some(band) {
                    last_band = Some(band);
                    sender.send(vec![(oid.clone(), SnmpValue::Gauge(value))]);
                }
                std::thread::sleep(interval);
            }
        });
        ThresholdWatch {
            stop,
            thread: Some(thread),
        }
    }

    /// Stops the watch.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ThresholdWatch {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oid::oids;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn channel_sender_delivers_decoded_traps() {
        let (sender, rx) = TrapSender::channel("public");
        sender.send(vec![(oids::hr_processor_load_1(), SnmpValue::Gauge(88))]);
        let msg = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(msg.pdu_type, PduType::Trap);
        assert_eq!(msg.pdu.varbinds[0].1, SnmpValue::Gauge(88));
    }

    #[test]
    fn tcp_collector_receives_traps() {
        let collector = TrapCollector::spawn("public").unwrap();
        let sender = TrapSender::tcp("public", collector.addr()).unwrap();
        sender.send(vec![(oids::hr_processor_load_1(), SnmpValue::Gauge(55))]);
        let msg = collector.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(msg.community, "public");
        assert_eq!(msg.pdu.varbinds[0].1, SnmpValue::Gauge(55));
    }

    #[test]
    fn wrong_community_traps_are_dropped() {
        let collector = TrapCollector::spawn("public").unwrap();
        let bad = TrapSender::tcp("private", collector.addr()).unwrap();
        bad.send(vec![(oids::sys_uptime(), SnmpValue::TimeTicks(1))]);
        let good = TrapSender::tcp("public", collector.addr()).unwrap();
        good.send(vec![(oids::sys_uptime(), SnmpValue::TimeTicks(2))]);
        // Only the matching-community trap arrives.
        let msg = collector.recv_timeout(Duration::from_secs(2)).unwrap();
        assert_eq!(msg.pdu.varbinds[0].1, SnmpValue::TimeTicks(2));
        assert!(collector.recv_timeout(Duration::from_millis(50)).is_err());
    }

    #[test]
    fn threshold_watch_fires_on_band_changes_only() {
        let (sender, rx) = TrapSender::channel("public");
        let load = Arc::new(AtomicU64::new(5));
        let load2 = load.clone();
        let watch = ThresholdWatch::spawn(
            sender,
            oids::hr_processor_load_1(),
            vec![25, 50],
            Duration::from_millis(5),
            move || load2.load(Ordering::Relaxed),
        );
        // Initial band (run band) fires once.
        let first = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(first.pdu.varbinds[0].1, SnmpValue::Gauge(5));
        // Stay in band: silence.
        load.store(10, Ordering::Relaxed);
        assert!(rx.recv_timeout(Duration::from_millis(60)).is_err());
        // Cross into the pause band.
        load.store(40, Ordering::Relaxed);
        let second = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(second.pdu.varbinds[0].1, SnmpValue::Gauge(40));
        // Cross into the stop band.
        load.store(95, Ordering::Relaxed);
        let third = rx.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(third.pdu.varbinds[0].1, SnmpValue::Gauge(95));
        watch.stop();
    }
}
