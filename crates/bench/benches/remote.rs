//! Wire-protocol benchmarks: protocol-v2 batch dispatch and batch fetch
//! against the per-tuple v1 baseline, over a real loopback TCP server.
//!
//! Both arms drive the same `TupleStore` batch API through a
//! [`RemoteSpace`]; the baseline proxy is capped at protocol v1
//! (`connect_capped(addr, 1)`), which degrades every batch call to one
//! frame — one round trip — per tuple, exactly what a v1 peer pays.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use acc_tuplespace::{RemoteSpace, Space, SpaceServer, Template, Tuple, TupleStore};

const TASKS: usize = 1000;

fn task_tuple(id: i64) -> Tuple {
    Tuple::build("acc.task")
        .field("job", "bench")
        .field("task_id", id)
        .field("payload", vec![0u8; 64])
        .done()
}

/// Master-side planning: dispatch 1k tasks through the proxy in one
/// `write_all`. v1 pays 1000 round trips; v2 sends budgeted batch frames
/// pipelined over the same connection.
fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("remote/dispatch_1k");
    group.throughput(Throughput::Elements(TASKS as u64));
    for (label, cap) in [("per_tuple_v1", 1u32), ("batched_v2", 2)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &cap, |b, &cap| {
            let space = Space::new("bench");
            let server = SpaceServer::spawn(space.clone(), "127.0.0.1:0").unwrap();
            let remote = RemoteSpace::connect_capped(server.addr(), cap).unwrap();
            let template = Template::of_type("acc.task");
            b.iter(|| {
                let tuples: Vec<Tuple> = (0..TASKS as i64).map(task_tuple).collect();
                remote.write_all(tuples).unwrap();
                // Cleanup between iterations stays local — off the wire
                // path under test, and identical in both arms.
                let drained = Space::take_all(&space, &template).unwrap();
                assert_eq!(drained.len(), TASKS);
            });
        });
    }
    group.finish();
}

/// Worker-side fetching: drain 1k tasks through the proxy in prefetch
/// batches of 32. v1 degrades `take_up_to` to a round trip per tuple.
fn bench_fetch(c: &mut Criterion) {
    let mut group = c.benchmark_group("remote/fetch_1k");
    group.throughput(Throughput::Elements(TASKS as u64));
    for (label, cap) in [("per_tuple_v1", 1u32), ("batched_v2", 2)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &cap, |b, &cap| {
            let space = Space::new("bench");
            let server = SpaceServer::spawn(space.clone(), "127.0.0.1:0").unwrap();
            let remote = RemoteSpace::connect_capped(server.addr(), cap).unwrap();
            let template = Template::of_type("acc.task");
            b.iter(|| {
                // Seeding is local: same cost in both arms, off the wire.
                Space::write_all(&space, (0..TASKS as i64).map(task_tuple).collect()).unwrap();
                let mut got = 0usize;
                while got < TASKS {
                    let batch = remote
                        .take_up_to(&template, 32, Some(Duration::ZERO))
                        .unwrap();
                    assert!(!batch.is_empty(), "seeded tasks must be fetchable");
                    got += batch.len();
                }
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_dispatch, bench_fetch
);
criterion_main!(benches);
