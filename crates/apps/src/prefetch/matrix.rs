//! The stochastic matrix of the paper's §5.1.3.
//!
//! Construction, verbatim from the paper: each page `i` corresponds to row
//! `i` and column `i`; if page `j` has `n` successors, the `(i,j)` entry is
//! `1/n` when `i` is one of those successors and 0 otherwise. Columns of
//! dangling pages (no successors) are set to `1/N` so the matrix stays
//! column-stochastic — the standard PageRank fix.

use super::web::LinkGraph;

/// A dense column-stochastic matrix, stored row-major so row strips are
/// contiguous (strips are the unit of parallel work).
#[derive(Debug, Clone, PartialEq)]
pub struct StochasticMatrix {
    n: usize,
    data: Vec<f64>,
}

impl StochasticMatrix {
    /// Builds the matrix from a link graph.
    pub fn from_graph(graph: &LinkGraph) -> StochasticMatrix {
        let n = graph.n;
        let mut data = vec![0.0; n * n];
        for j in 0..n {
            let out = graph.out_degree(j);
            if out == 0 {
                // Dangling page: its rank mass spreads uniformly.
                let w = 1.0 / n as f64;
                for i in 0..n {
                    data[i * n + j] = w;
                }
            } else {
                let w = 1.0 / out as f64;
                for &i in &graph.successors[j] {
                    data[i as usize * n + j] = w;
                }
            }
        }
        StochasticMatrix { n, data }
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// One row as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.n..(i + 1) * self.n]
    }

    /// Verifies that every column sums to 1 (within `tol`).
    pub fn is_column_stochastic(&self, tol: f64) -> bool {
        (0..self.n).all(|j| {
            let sum: f64 = (0..self.n).map(|i| self.get(i, j)).sum();
            (sum - 1.0).abs() <= tol
        })
    }

    /// Computes rows `[row0, row0+rows)` of `M·v` — the strip computation
    /// distributed to workers. Accumulation order is fixed (ascending
    /// column), so strip-wise and whole-matrix products are bit-identical.
    pub fn strip_multiply(&self, row0: usize, rows: usize, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.n, "vector dimension mismatch");
        assert!(row0 + rows <= self.n, "strip out of range");
        let mut out = Vec::with_capacity(rows);
        for i in row0..row0 + rows {
            let row = self.row(i);
            let mut acc = 0.0;
            for j in 0..self.n {
                acc += row[j] * v[j];
            }
            out.push(acc);
        }
        out
    }

    /// Full `M·v` (the sequential baseline's kernel).
    pub fn multiply(&self, v: &[f64]) -> Vec<f64> {
        self.strip_multiply(0, self.n, v)
    }

    /// The `(row0, rows)` strip decomposition with `strip_rows` rows per
    /// strip (the paper: 500 rows in strips of 20 ⇒ 25 strips).
    pub fn strips(&self, strip_rows: usize) -> Vec<(usize, usize)> {
        assert!(strip_rows > 0);
        let mut out = Vec::new();
        let mut row0 = 0;
        while row0 < self.n {
            let rows = strip_rows.min(self.n - row0);
            out.push((row0, rows));
            row0 += rows;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefetch::web::generate_cluster;

    fn tiny_graph() -> LinkGraph {
        // 0 -> {1, 2}; 1 -> {2}; 2 -> {0}; 3 -> {} (dangling)
        LinkGraph {
            n: 4,
            successors: vec![vec![1, 2], vec![2], vec![0], vec![]],
        }
    }

    #[test]
    fn construction_matches_paper_rule() {
        let m = StochasticMatrix::from_graph(&tiny_graph());
        // Page 0 has 2 successors: column 0 has 1/2 at rows 1 and 2.
        assert_eq!(m.get(1, 0), 0.5);
        assert_eq!(m.get(2, 0), 0.5);
        assert_eq!(m.get(0, 0), 0.0);
        // Page 1 has 1 successor: column 1 has 1 at row 2.
        assert_eq!(m.get(2, 1), 1.0);
        // Dangling page 3: uniform column.
        for i in 0..4 {
            assert_eq!(m.get(i, 3), 0.25);
        }
    }

    #[test]
    fn columns_sum_to_one() {
        let m = StochasticMatrix::from_graph(&tiny_graph());
        assert!(m.is_column_stochastic(1e-12));
        let pages = generate_cluster("acme", 120, 3);
        let graph = LinkGraph::from_pages(&pages);
        let big = StochasticMatrix::from_graph(&graph);
        assert!(big.is_column_stochastic(1e-9));
    }

    #[test]
    fn multiply_preserves_total_mass() {
        let m = StochasticMatrix::from_graph(&tiny_graph());
        let v = vec![0.25; 4];
        let out = m.multiply(&v);
        let sum: f64 = out.iter().sum();
        assert!(
            (sum - 1.0).abs() < 1e-12,
            "stochastic matrix preserves mass"
        );
    }

    #[test]
    fn strips_cover_exactly() {
        let pages = generate_cluster("acme", 100, 1);
        let m = StochasticMatrix::from_graph(&LinkGraph::from_pages(&pages));
        let strips = m.strips(20);
        assert_eq!(strips.len(), 5);
        assert_eq!(strips[0], (0, 20));
        assert_eq!(strips[4], (80, 20));
        // Ragged case.
        let ragged = m.strips(30);
        assert_eq!(ragged.last(), Some(&(90, 10)));
        assert_eq!(ragged.iter().map(|(_, r)| r).sum::<usize>(), 100);
    }

    #[test]
    fn strip_multiply_equals_full_multiply() {
        let pages = generate_cluster("acme", 60, 2);
        let m = StochasticMatrix::from_graph(&LinkGraph::from_pages(&pages));
        let v: Vec<f64> = (0..60).map(|i| 1.0 / (i + 1) as f64).collect();
        let full = m.multiply(&v);
        let mut stitched = Vec::new();
        for (row0, rows) in m.strips(13) {
            stitched.extend(m.strip_multiply(row0, rows, &v));
        }
        assert_eq!(stitched, full, "bit-identical accumulation");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn multiply_checks_dimensions() {
        let m = StochasticMatrix::from_graph(&tiny_graph());
        m.multiply(&[1.0, 2.0]);
    }
}
