//! CPU load accounting and usage history.

use std::sync::atomic::{AtomicU64, Ordering};

/// The two components of a node's CPU utilisation: work done for the
/// framework, and background load from the node's own user. The rule-base
/// protocol exists precisely to keep the first out of the way of the second.
#[derive(Debug, Default)]
pub struct LoadMix {
    framework: AtomicU64,
    background: AtomicU64,
}

impl LoadMix {
    /// Sets the framework-work component (percent).
    pub fn set_framework(&self, pct: u64) {
        self.framework.store(pct.min(100), Ordering::Relaxed);
    }

    /// Sets the background component (percent).
    pub fn set_background(&self, pct: u64) {
        self.background.store(pct.min(100), Ordering::Relaxed);
    }

    /// The framework component.
    pub fn framework(&self) -> u64 {
        self.framework.load(Ordering::Relaxed)
    }

    /// The background component.
    pub fn background(&self) -> u64 {
        self.background.load(Ordering::Relaxed)
    }

    /// The CPU share the framework process actually gets: background
    /// (interactive, higher-priority) load squeezes it out. This is what
    /// the worker-agent exports as `acc_framework_load`, so the inference
    /// engine's `external = total - framework` stays meaningful even when
    /// the node is saturated.
    pub fn framework_effective(&self) -> u64 {
        self.framework() * (100 - self.background()) / 100
    }

    /// Total utilisation: background plus the framework's effective share,
    /// saturating at 100%.
    pub fn total(&self) -> u64 {
        (self.framework_effective() + self.background()).min(100)
    }
}

/// One point of a CPU usage history plot — the x/y pairs of the paper's
/// figures 9(a), 10(a), 11(a).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UsagePoint {
    /// Milliseconds since the experiment epoch.
    pub at_ms: u64,
    /// CPU utilisation percent.
    pub load: u64,
}

/// A bounded time series of utilisation samples.
#[derive(Debug, Clone)]
pub struct UsageHistory {
    points: std::collections::VecDeque<UsagePoint>,
    capacity: usize,
}

impl UsageHistory {
    /// History retaining the last `capacity` points.
    pub fn new(capacity: usize) -> UsageHistory {
        UsageHistory {
            points: std::collections::VecDeque::with_capacity(capacity.min(4096)),
            capacity: capacity.max(1),
        }
    }

    /// Appends a sample.
    pub fn record(&mut self, at_ms: u64, load: u64) {
        if self.points.len() == self.capacity {
            self.points.pop_front();
        }
        self.points.push_back(UsagePoint { at_ms, load });
    }

    /// All samples, oldest first.
    pub fn points(&self) -> impl Iterator<Item = &UsagePoint> {
        self.points.iter()
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Peak utilisation over the window.
    pub fn peak(&self) -> Option<UsagePoint> {
        self.points.iter().copied().max_by_key(|p| p.load)
    }

    /// Mean utilisation over the window.
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points.iter().map(|p| p.load as f64).sum::<f64>() / self.points.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loadmix_clamps_inputs() {
        let m = LoadMix::default();
        m.set_framework(250);
        assert_eq!(m.framework(), 100);
        m.set_background(300);
        assert_eq!(m.background(), 100);
    }

    #[test]
    fn background_squeezes_framework_share() {
        let m = LoadMix::default();
        m.set_framework(98);
        assert_eq!(m.framework_effective(), 98, "idle node: full share");
        assert_eq!(m.total(), 98);
        m.set_background(50);
        assert_eq!(m.framework_effective(), 49, "half squeezed out");
        assert_eq!(m.total(), 99);
        m.set_background(100);
        assert_eq!(m.framework_effective(), 0, "hogged node: no share");
        assert_eq!(m.total(), 100);
    }

    #[test]
    fn external_load_is_recoverable_under_saturation() {
        // The monitoring invariant: total - framework_effective equals the
        // background load even when the node is saturated.
        let m = LoadMix::default();
        for bg in [0u64, 10, 25, 50, 90, 100] {
            m.set_framework(98);
            m.set_background(bg);
            assert_eq!(m.total() - m.framework_effective(), bg, "bg {bg}");
        }
    }

    #[test]
    fn history_bounded_and_ordered() {
        let mut h = UsageHistory::new(2);
        h.record(0, 10);
        h.record(1, 20);
        h.record(2, 30);
        let pts: Vec<_> = h.points().copied().collect();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0], UsagePoint { at_ms: 1, load: 20 });
        assert_eq!(pts[1], UsagePoint { at_ms: 2, load: 30 });
    }

    #[test]
    fn peak_and_mean() {
        let mut h = UsageHistory::new(10);
        assert!(h.peak().is_none());
        assert!(h.mean().is_none());
        h.record(0, 10);
        h.record(1, 90);
        h.record(2, 50);
        assert_eq!(h.peak().unwrap().load, 90);
        assert!((h.mean().unwrap() - 50.0).abs() < 1e-12);
    }
}
