//! CRC-32 (IEEE 802.3 polynomial, reflected), implemented locally so the
//! crate stays dependency-free. A 256-entry table is computed at compile
//! time; the per-byte loop is the classic table-driven form — plenty for
//! framing integrity checks (the WAL is not defending against an
//! adversary, only against torn writes and bit rot).

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 checksum of `bytes` (IEEE polynomial, as used by zlib/PNG).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_any_flip() {
        let base = crc32(b"hello world");
        let mut bytes = b"hello world".to_vec();
        for i in 0..bytes.len() {
            bytes[i] ^= 1;
            assert_ne!(crc32(&bytes), base, "flip at {i} undetected");
            bytes[i] ^= 1;
        }
    }
}
