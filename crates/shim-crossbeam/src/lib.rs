//! Offline stand-in for [`crossbeam`](https://crates.io/crates/crossbeam).
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships a minimal, API-compatible implementation of the subset
//! the codebase uses: `crossbeam::channel` MPMC channels (bounded and
//! unbounded) with cloneable senders *and* receivers, timeouts, and
//! disconnect detection.

pub mod channel {
    //! Multi-producer multi-consumer channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Signalled when a message arrives or all senders disconnect.
        recv_ready: Condvar,
        /// Signalled when capacity frees up or all receivers disconnect.
        send_ready: Condvar,
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloneable.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is bounded and full.
        Full(T),
        /// All receivers are gone.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the timeout elapsed.
        Timeout,
        /// The channel is empty and all senders are gone.
        Disconnected,
    }

    /// Creates a channel of unbounded capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            recv_ready: Condvar::new(),
            send_ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(msg));
                }
                let full = state.cap.is_some_and(|c| state.queue.len() >= c);
                if !full {
                    state.queue.push_back(msg);
                    self.shared.recv_ready.notify_one();
                    return Ok(());
                }
                state = self.shared.send_ready.wait(state).unwrap();
            }
        }

        /// Sends without blocking; fails on a full bounded channel.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if state.cap.is_some_and(|c| state.queue.len() >= c) {
                return Err(TrySendError::Full(msg));
            }
            state.queue.push_back(msg);
            self.shared.recv_ready.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or all senders
        /// disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    self.shared.send_ready.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.recv_ready.wait(state).unwrap();
            }
        }

        /// Receives a message, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = state.queue.pop_front() {
                    self.shared.send_ready.notify_one();
                    return Ok(msg);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (s, result) = self
                    .shared
                    .recv_ready
                    .wait_timeout(state, deadline - now)
                    .unwrap();
                state = s;
                if result.timed_out() && state.queue.is_empty() {
                    return if state.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().unwrap();
            match state.queue.pop_front() {
                Some(msg) => {
                    self.shared.send_ready.notify_one();
                    Ok(msg)
                }
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// True when no message is queued right now.
        pub fn is_empty(&self) -> bool {
            self.shared.state.lock().unwrap().queue.is_empty()
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                self.shared.recv_ready.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                self.shared.send_ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Sender")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.pad("Receiver")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn unbounded_send_recv() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_detected() {
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx2, rx2) = unbounded::<i32>();
            drop(rx2);
            assert_eq!(tx2.send(5), Err(SendError(5)));
        }

        #[test]
        fn bounded_try_send_full() {
            let (tx, rx) = bounded(1);
            tx.try_send(1).unwrap();
            assert!(matches!(tx.try_send(2), Err(TrySendError::Full(2))));
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            let h = thread::spawn(move || {
                thread::sleep(Duration::from_millis(20));
                tx.send(9).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(9));
            h.join().unwrap();
        }

        #[test]
        fn cloned_receivers_share_stream() {
            let (tx, rx) = unbounded();
            let rx2 = rx.clone();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            let mut got = Vec::new();
            for _ in 0..5 {
                got.push(rx.recv().unwrap());
                got.push(rx2.recv().unwrap());
            }
            got.sort_unstable();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }
    }
}
