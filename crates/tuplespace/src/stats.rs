//! Space operation counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone counters describing traffic through a space. All methods use
/// relaxed atomics: the counters are diagnostics, not synchronization.
#[derive(Debug, Default)]
pub struct SpaceStats {
    pub(crate) writes: AtomicU64,
    pub(crate) reads: AtomicU64,
    pub(crate) takes: AtomicU64,
    pub(crate) misses: AtomicU64,
    pub(crate) blocked_waits: AtomicU64,
    pub(crate) expired: AtomicU64,
    pub(crate) txns_committed: AtomicU64,
    pub(crate) txns_aborted: AtomicU64,
    pub(crate) bytes_written: AtomicU64,
    pub(crate) shard_contention: AtomicU64,
    pub(crate) index_hits: AtomicU64,
    pub(crate) index_misses: AtomicU64,
}

/// A point-in-time copy of [`SpaceStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Entries written (including transactional writes at commit time).
    pub writes: u64,
    /// Successful non-destructive reads.
    pub reads: u64,
    /// Successful takes.
    pub takes: u64,
    /// Read/take attempts that returned empty (timeout or if-exists miss).
    pub misses: u64,
    /// Number of times an operation blocked waiting for a match.
    pub blocked_waits: u64,
    /// Entries reclaimed by lease expiry.
    pub expired: u64,
    /// Transactions committed.
    pub txns_committed: u64,
    /// Transactions aborted.
    pub txns_aborted: u64,
    /// Total approximate bytes written into the space.
    pub bytes_written: u64,
    /// Shard lock acquisitions that found the lock already held.
    pub shard_contention: u64,
    /// Match attempts answered through the per-field exact-match index.
    pub index_hits: u64,
    /// Match attempts that had to fall back to a linear shard scan.
    pub index_misses: u64,
}

impl SpaceStats {
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            writes: self.writes.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            takes: self.takes.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            blocked_waits: self.blocked_waits.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            txns_committed: self.txns_committed.load(Ordering::Relaxed),
            txns_aborted: self.txns_aborted.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            shard_contention: self.shard_contention.load(Ordering::Relaxed),
            index_hits: self.index_hits.load(Ordering::Relaxed),
            index_misses: self.index_misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_start_at_zero_and_bump() {
        let s = SpaceStats::default();
        assert_eq!(s.snapshot(), StatsSnapshot::default());
        SpaceStats::bump(&s.writes);
        SpaceStats::add(&s.bytes_written, 128);
        let snap = s.snapshot();
        assert_eq!(snap.writes, 1);
        assert_eq!(snap.bytes_written, 128);
        assert_eq!(snap.takes, 0);
    }
}
