//! Service attributes and associative matching.
//!
//! Jini lookup is attribute-based: a client sends the list of attributes it
//! requires and the lookup server returns services whose attribute sets
//! contain them. [`Attributes`] is a canonical (sorted, unique-key) set of
//! string key/value pairs.

use std::fmt;

/// A canonical set of `key = value` attribute pairs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Attributes {
    /// Sorted by key; keys unique.
    pairs: Vec<(String, String)>,
}

impl Attributes {
    /// An empty attribute set (matches everything when used as a query).
    pub fn none() -> Attributes {
        Attributes::default()
    }

    /// Starts building an attribute set.
    pub fn build() -> AttributesBuilder {
        AttributesBuilder { pairs: Vec::new() }
    }

    /// Value for `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|i| self.pairs[i].1.as_str())
    }

    /// All pairs, sorted by key.
    pub fn pairs(&self) -> &[(String, String)] {
        &self.pairs
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True when there are no attributes.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Associative matching: does this (service) attribute set contain every
    /// pair of `query`?
    pub fn satisfies(&self, query: &Attributes) -> bool {
        query
            .pairs
            .iter()
            .all(|(k, v)| self.get(k) == Some(v.as_str()))
    }
}

impl fmt::Display for Attributes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.pairs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

/// Builder for [`Attributes`].
#[derive(Debug)]
pub struct AttributesBuilder {
    pairs: Vec<(String, String)>,
}

impl AttributesBuilder {
    /// Sets an attribute (overwriting any earlier value for the key).
    pub fn set(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        let key = key.into();
        let value = value.into();
        if let Some(slot) = self.pairs.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.pairs.push((key, value));
        }
        self
    }

    /// Finishes the set.
    pub fn done(mut self) -> Attributes {
        self.pairs.sort_by(|(a, _), (b, _)| a.cmp(b));
        Attributes { pairs: self.pairs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_get() {
        let a = Attributes::build()
            .set("kind", "space")
            .set("ver", "1")
            .done();
        assert_eq!(a.get("kind"), Some("space"));
        assert_eq!(a.get("ver"), Some("1"));
        assert_eq!(a.get("missing"), None);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn later_set_overwrites() {
        let a = Attributes::build().set("k", "1").set("k", "2").done();
        assert_eq!(a.get("k"), Some("2"));
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn subset_matching() {
        let service = Attributes::build()
            .set("kind", "space")
            .set("zone", "lab")
            .done();
        assert!(service.satisfies(&Attributes::none()));
        assert!(service.satisfies(&Attributes::build().set("kind", "space").done()));
        assert!(service.satisfies(&service.clone()));
        assert!(!service.satisfies(&Attributes::build().set("kind", "db").done()));
        assert!(!service.satisfies(&Attributes::build().set("extra", "x").done()));
    }

    #[test]
    fn canonical_equality() {
        let a = Attributes::build().set("a", "1").set("b", "2").done();
        let b = Attributes::build().set("b", "2").set("a", "1").done();
        assert_eq!(a, b);
    }

    #[test]
    fn display() {
        let a = Attributes::build().set("b", "2").set("a", "1").done();
        assert_eq!(format!("{a}"), "{a=1, b=2}");
    }
}
