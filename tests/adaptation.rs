//! Integration tests of the adaptation path on the real thread runtime:
//! load generators drive node CPU, SNMP polling and the inference engine
//! react, workers obey signals between tasks, and no work is lost.

use std::sync::Arc;
use std::time::{Duration, Instant};

use adaptive_spaces::cluster::{LoadGenerator, LoadTrace, NodeSpec};
use adaptive_spaces::framework::{
    Application, ClusterBuilder, ExecError, FrameworkConfig, Signal, TaskEntry, TaskExecutor,
    TaskSpec, WorkerState,
};
use adaptive_spaces::space::Payload;

struct SlowEcho {
    tasks: u64,
    seen: Vec<u64>,
}

struct SlowExecutor;

impl TaskExecutor for SlowExecutor {
    fn execute(&self, task: &TaskEntry) -> Result<Vec<u8>, ExecError> {
        let x: u64 = task.input()?;
        std::thread::sleep(Duration::from_millis(8));
        Ok(x.to_bytes())
    }
}

impl Application for SlowEcho {
    fn job_name(&self) -> String {
        "slow-echo".into()
    }
    fn bundle_name(&self) -> String {
        "slow-echo-worker".into()
    }
    fn plan(&mut self) -> Vec<TaskSpec> {
        (0..self.tasks).map(|i| TaskSpec::new(i, &i)).collect()
    }
    fn executor(&self) -> Arc<dyn TaskExecutor> {
        Arc::new(SlowExecutor)
    }
    fn absorb(&mut self, _task_id: u64, payload: &[u8]) -> Result<(), ExecError> {
        self.seen
            .push(u64::from_bytes(payload).map_err(ExecError::Decode)?);
        Ok(())
    }
}

fn fast_config() -> FrameworkConfig {
    FrameworkConfig {
        poll_interval: Duration::from_millis(10),
        class_load_base: Duration::from_millis(2),
        class_load_per_kb: Duration::ZERO,
        task_poll_timeout: Duration::from_millis(5),
        ..FrameworkConfig::default()
    }
}

fn wait_for(pred: impl Fn() -> bool, what: &str) {
    let begun = Instant::now();
    while !pred() {
        assert!(
            begun.elapsed() < Duration::from_secs(10),
            "timed out waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn hogged_worker_is_stopped_and_job_still_completes() {
    let mut app = SlowEcho {
        tasks: 60,
        seen: vec![],
    };
    let mut cluster = ClusterBuilder::new(fast_config()).build();
    cluster.install(&app);
    cluster.add_worker(NodeSpec::new("victim", 800, 256));
    cluster.add_worker(NodeSpec::new("steady", 800, 256));

    // Hog the victim for the whole run.
    let victim = cluster.workers()[0].node.clone();
    let hog = LoadGenerator::start(&victim, LoadTrace::simulator2(60_000));
    wait_for(|| victim.cpu_load() == 100, "load generator");

    let report = cluster.run(&mut app);
    assert!(report.complete);
    let mut seen = app.seen.clone();
    seen.sort_unstable();
    assert_eq!(
        seen,
        (0..60).collect::<Vec<_>>(),
        "every result exactly once"
    );
    // The steady worker did (essentially) everything.
    let victim_done = cluster.workers()[0].tasks_done();
    let steady_done = cluster.workers()[1].tasks_done();
    assert!(
        steady_done >= 55,
        "steady {steady_done}, victim {victim_done}"
    );
    hog.stop();
    cluster.shutdown();
}

#[test]
fn pause_resume_cycle_with_moderate_load() {
    let mut cluster = ClusterBuilder::new(fast_config()).build();
    let app = SlowEcho {
        tasks: 0,
        seen: vec![],
    };
    cluster.install(&app);
    cluster.add_worker(NodeSpec::new("solo", 800, 256));
    let node = cluster.workers()[0].node.clone();

    // The worker starts (idle node).
    wait_for(
        || cluster.workers()[0].state() == WorkerState::Running,
        "start",
    );
    // Moderate load → Pause.
    node.load().set_background(40);
    wait_for(
        || cluster.workers()[0].state() == WorkerState::Paused,
        "pause",
    );
    // Load clears → Resume.
    node.load().set_background(0);
    wait_for(
        || cluster.workers()[0].state() == WorkerState::Running,
        "resume",
    );
    // Heavy load → Stop (from Running).
    node.load().set_background(95);
    wait_for(
        || cluster.workers()[0].state() == WorkerState::Stopped,
        "stop",
    );

    let log = cluster.workers()[0].signal_log();
    let sequence: Vec<Signal> = log.iter().map(|e| e.signal).collect();
    assert_eq!(
        sequence,
        vec![Signal::Start, Signal::Pause, Signal::Resume, Signal::Stop]
    );
    // Resume is cheaper than Start (no class loading).
    let start = log.iter().find(|e| e.signal == Signal::Start).unwrap();
    let resume = log.iter().find(|e| e.signal == Signal::Resume).unwrap();
    assert!(resume.reaction_ms() <= start.reaction_ms());
    cluster.shutdown();
}

#[test]
fn signals_never_interrupt_a_task_mid_flight() {
    // A worker computing 8 ms tasks that is paused mid-run must still
    // deliver every result exactly once — the current task completes and
    // its result reaches the space before the pause takes effect.
    let mut app = SlowEcho {
        tasks: 40,
        seen: vec![],
    };
    let mut cluster = ClusterBuilder::new(fast_config()).build();
    cluster.install(&app);
    cluster.add_worker(NodeSpec::new("flappy", 800, 256));
    let node = cluster.workers()[0].node.clone();

    // Flap the background load while the job runs.
    let flapper = std::thread::spawn(move || {
        for _ in 0..6 {
            node.load().set_background(40);
            std::thread::sleep(Duration::from_millis(40));
            node.load().set_background(0);
            std::thread::sleep(Duration::from_millis(40));
        }
    });
    let report = cluster.run(&mut app);
    flapper.join().unwrap();
    assert!(report.complete);
    let mut seen = app.seen.clone();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), 40, "no duplicates, no losses");
    cluster.shutdown();
}
