//! The discrete-event core: one simulated run of the framework.
//!
//! Virtual time is in integer microseconds. The event loop models exactly
//! the mechanisms of the thread runtime — master planning writes, worker
//! take/compute/write cycles, SNMP polls, inference decisions, signal
//! delivery, class loading on Start — and reuses the *real* policy code
//! ([`acc_core::InferenceEngine`], [`acc_core::WorkerState::apply`]) so the
//! two runtimes cannot drift apart semantically.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use acc_cluster::{LoadTrace, NodeSpec, UsagePoint};
use acc_core::{InferenceEngine, PhaseTimes, Signal, SignalLogEntry, WorkerId, WorkerState};

use crate::model::{AppProfile, CostModel};
use crate::series::series;

fn us(ms: f64) -> u64 {
    (ms * 1000.0).round().max(0.0) as u64
}

fn to_ms(us: u64) -> f64 {
    us as f64 / 1000.0
}

/// Configuration of one simulated run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Framework-level costs.
    pub cost: CostModel,
    /// The application's shape.
    pub profile: AppProfile,
    /// The participating worker nodes.
    pub workers: Vec<NodeSpec>,
    /// Optional background-load trace per worker (same length as
    /// `workers`; `None` = always idle).
    pub traces: Vec<Option<LoadTrace>>,
    /// Record worker CPU usage every this many ms (0 disables).
    pub usage_sample_ms: f64,
    /// Hard stop (safety cap / scripted-experiment length), ms.
    pub horizon_ms: f64,
}

impl SimConfig {
    /// A run of `profile` on the first `n` workers of its testbed, with no
    /// background load.
    pub fn new(profile: AppProfile, n: usize) -> SimConfig {
        let workers = profile.testbed.with_workers(n).workers;
        let traces = vec![None; workers.len()];
        SimConfig {
            cost: CostModel::default(),
            profile,
            workers,
            traces,
            usage_sample_ms: 0.0,
            horizon_ms: 600_000.0,
        }
    }
}

/// Per-worker results of a simulated run.
#[derive(Debug, Clone)]
pub struct SimWorkerReport {
    /// Node name.
    pub name: String,
    /// Tasks computed.
    pub tasks_done: u64,
    /// Final lifecycle state.
    pub final_state: WorkerState,
    /// Signals handled, with reaction times.
    pub signal_log: Vec<SignalLogEntry>,
    /// CPU usage samples (if sampling was enabled).
    pub usage: Vec<UsagePoint>,
    /// Virtual time this worker spent computing while its node carried
    /// external load above the idle band — the intrusiveness the
    /// monitoring loop exists to minimise.
    pub intrusion_ms: f64,
}

/// The outcome of a simulated run.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// The paper's phase timings.
    pub times: PhaseTimes,
    /// Did every task complete before the horizon?
    pub complete: bool,
    /// End of the run (last master activity), ms.
    pub end_ms: f64,
    /// Per-worker detail.
    pub workers: Vec<SimWorkerReport>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// Master finished writing task #i into the space.
    TaskReady(usize),
    /// SNMP poll tick for worker w.
    Poll(usize),
    /// A signal reaches worker w's rule-base client.
    SignalArrive(usize, u8),
    /// Worker w finishes its current activity (compute or class load).
    WorkerFree(usize),
    /// Worker w's ack reaches the inference engine.
    AckArrive(usize, u8),
    /// Periodic usage-history sample.
    UsageSample,
}

fn state_code(s: WorkerState) -> u8 {
    match s {
        WorkerState::Stopped => 0,
        WorkerState::Running => 1,
        WorkerState::Paused => 2,
    }
}

fn state_from(code: u8) -> WorkerState {
    match code {
        0 => WorkerState::Stopped,
        1 => WorkerState::Running,
        _ => WorkerState::Paused,
    }
}

#[derive(Debug)]
struct WState {
    name: String,
    speed: f64,
    state: WorkerState,
    loaded: bool,
    /// Busy computing or class loading until this time.
    busy_until: Option<u64>,
    class_loading: bool,
    pending: VecDeque<(Signal, u64)>,
    first_take: Option<u64>,
    last_result: u64,
    tasks_done: u64,
    signal_log: Vec<SignalLogEntry>,
    usage: Vec<UsagePoint>,
    trace: Option<LoadTrace>,
    intrusion_us: u64,
}

impl WState {
    fn background(&self, t: u64) -> u64 {
        self.trace
            .as_ref()
            .map(|tr| tr.level_at(to_ms(t) as u64))
            .unwrap_or(0)
    }

    fn framework_load(&self) -> u64 {
        if self.class_loading {
            80
        } else if self.busy_until.is_some() {
            98
        } else if self.state == WorkerState::Running {
            2
        } else {
            0
        }
    }

    fn total_load(&self, t: u64) -> u64 {
        (self.background(t) + self.framework_load()).min(100)
    }

    fn idle_running(&self) -> bool {
        self.state == WorkerState::Running && self.busy_until.is_none() && self.loaded
    }
}

struct Sim {
    cfg: SimConfig,
    clock: u64,
    seq: u64,
    queue: BinaryHeap<Reverse<(u64, u64, Ev)>>,
    workers: Vec<WState>,
    engine: InferenceEngine,
    /// Tasks become ready in index order (the master plans sequentially)
    /// and are claimed oldest-first, so two counters suffice.
    tasks_ready: usize,
    tasks_claimed: usize,
    results: Vec<u64>,
    horizon: u64,
}

impl Sim {
    fn push(&mut self, at: u64, ev: Ev) {
        self.seq += 1;
        self.queue.push(Reverse((at, self.seq, ev)));
    }

    fn run(mut self) -> SimOutcome {
        let profile = self.cfg.profile.clone();
        // Master planning schedule.
        for i in 0..profile.tasks {
            let at = us(profile.plan_fixed_ms + profile.plan_per_task_ms * (i + 1) as f64);
            self.push(at, Ev::TaskReady(i));
        }
        // First polls, staggered 1 ms apart like real pollers starting up.
        for w in 0..self.workers.len() {
            self.push(us(1.0) + w as u64 * 1000, Ev::Poll(w));
        }
        if self.cfg.usage_sample_ms > 0.0 {
            self.push(0, Ev::UsageSample);
        }

        while let Some(Reverse((t, _, ev))) = self.queue.pop() {
            if t > self.horizon {
                break;
            }
            series().events.inc();
            self.clock = t;
            if self.results.len() == self.cfg.profile.tasks {
                break;
            }
            match ev {
                Ev::TaskReady(i) => {
                    self.tasks_ready = self.tasks_ready.max(i + 1);
                    self.dispatch_all(t);
                }
                Ev::Poll(w) => self.poll(w, t),
                Ev::SignalArrive(w, code) => {
                    let signal = Signal::from_code(code).expect("valid code");
                    self.workers[w].pending.push_back((signal, t));
                    if self.workers[w].busy_until.is_none() {
                        self.process_signals(w, t);
                        // A Resume leaves the worker idle and Running; put
                        // it back to work immediately.
                        if self.workers[w].idle_running() {
                            self.try_take(w, t);
                        }
                    }
                }
                Ev::AckArrive(w, state_code) => {
                    self.engine
                        .on_ack(WorkerId(w as u64 + 1), state_from(state_code));
                }
                Ev::WorkerFree(w) => self.worker_free(w, t),
                Ev::UsageSample => {
                    let at_ms = to_ms(t) as u64;
                    for w in 0..self.workers.len() {
                        let load = self.workers[w].total_load(t);
                        self.workers[w].usage.push(UsagePoint { at_ms, load });
                    }
                    let next = t + us(self.cfg.usage_sample_ms);
                    self.push(next, Ev::UsageSample);
                }
            }
        }

        self.finish(profile)
    }

    /// SNMP poll: sample the worker's *external* load and consult the
    /// inference engine, exactly as `acc_core::monitor` does.
    fn poll(&mut self, w: usize, t: u64) {
        let external = self.workers[w].background(t);
        if let Some(signal) = self.engine.on_sample(WorkerId(w as u64 + 1), external) {
            self.push(
                t + us(self.cfg.cost.signal_latency_ms),
                Ev::SignalArrive(w, signal.code()),
            );
        }
        self.push(t + us(self.cfg.cost.poll_interval_ms), Ev::Poll(w));
    }

    /// Worker finished computing or class loading.
    fn worker_free(&mut self, w: usize, t: u64) {
        let was_class_load = self.workers[w].class_loading;
        self.workers[w].busy_until = None;
        if was_class_load {
            self.workers[w].class_loading = false;
            self.workers[w].loaded = true;
        }
        // Signals take effect between tasks (after the current one wrote
        // its result).
        self.process_signals(w, t);
        if self.workers[w].idle_running() {
            self.try_take(w, t);
        }
    }

    fn process_signals(&mut self, w: usize, t: u64) {
        while let Some((signal, client_t)) = self.workers[w].pending.pop_front() {
            let current = self.workers[w].state;
            let Some(next) = current.apply(signal) else {
                // Invalid in this state: re-ack to resynchronise the engine.
                self.push(
                    t + us(self.cfg.cost.signal_latency_ms),
                    Ev::AckArrive(w, state_code(current)),
                );
                continue;
            };
            let worker_t;
            match signal {
                Signal::Start => {
                    // Remote class loading: the worker is busy for the
                    // loading period and only then starts taking tasks.
                    let done = t + us(self.cfg.cost.class_load_ms);
                    self.workers[w].class_loading = true;
                    self.workers[w].loaded = false;
                    self.workers[w].busy_until = Some(done);
                    self.workers[w].state = next;
                    worker_t = done;
                    self.push(done, Ev::WorkerFree(w));
                }
                Signal::Resume => {
                    debug_assert!(self.workers[w].loaded, "Resume implies classes loaded");
                    self.workers[w].state = next;
                    worker_t = t;
                }
                Signal::Pause => {
                    self.workers[w].state = next;
                    worker_t = t;
                }
                Signal::Stop => {
                    self.workers[w].state = next;
                    self.workers[w].loaded = false;
                    worker_t = t;
                }
            }
            series().signals_delivered.inc();
            series()
                .reaction_vus
                .observe(worker_t.saturating_sub(client_t));
            self.workers[w].signal_log.push(SignalLogEntry {
                signal,
                client_signal_ms: to_ms(client_t) as u64,
                worker_signal_ms: to_ms(worker_t) as u64,
                new_state: next,
            });
            self.push(
                worker_t + us(self.cfg.cost.signal_latency_ms),
                Ev::AckArrive(w, state_code(next)),
            );
            if signal == Signal::Start {
                // Busy class loading; later signals queue until it ends.
                break;
            }
        }
    }

    /// Hand ready tasks to every idle running worker.
    fn dispatch_all(&mut self, t: u64) {
        for w in 0..self.workers.len() {
            if self.workers[w].idle_running() {
                self.try_take(w, t);
            }
        }
    }

    /// Worker-driven load balancing: the worker takes the oldest ready,
    /// unclaimed task.
    fn try_take(&mut self, w: usize, t: u64) {
        if self.tasks_claimed >= self.tasks_ready {
            return;
        }
        self.tasks_claimed += 1;
        let worker = &mut self.workers[w];
        if worker.first_take.is_none() {
            worker.first_take = Some(t);
        }
        // Service time: take RTT + compute scaled by speed and by what the
        // background load leaves of the CPU + write RTT.
        let background = worker.background(t);
        let availability = (1.0 - background as f64 / 100.0).max(0.05);
        let compute_ms = self.cfg.profile.task_work_ms / worker.speed / availability;
        let done = t + us(2.0 * self.cfg.cost.space_rtt_ms + compute_ms);
        if let Some(trace) = &worker.trace {
            // Exact overlap of this task's compute window with external
            // load above the idle band: the intrusiveness metric.
            let overlap_ms = trace.time_at_or_above(
                self.cfg.cost.thresholds.idle_max,
                to_ms(t) as u64,
                to_ms(done) as u64,
            );
            worker.intrusion_us += overlap_ms * 1000;
        }
        worker.busy_until = Some(done);
        worker.tasks_done += 1;
        worker.last_result = done;
        series().tasks_completed.inc();
        series().task_service_vus.observe(done - t);
        self.results.push(done);
        self.push(done, Ev::WorkerFree(w));
    }

    fn finish(self, profile: AppProfile) -> SimOutcome {
        let mut times = PhaseTimes {
            tasks: profile.tasks,
            task_planning_ms: profile.planning_ms(),
            max_master_overhead_ms: profile.plan_per_task_ms.max(profile.agg_per_task_ms),
            ..PhaseTimes::default()
        };
        for w in &self.workers {
            if let Some(first) = w.first_take {
                let span = to_ms(w.last_result.saturating_sub(first));
                times.max_worker_ms = times.max_worker_ms.max(span);
                times.per_worker_ms.insert(w.name.clone(), span);
            }
        }
        // Master aggregation timeline: results are assimilated in arrival
        // order, no earlier than the end of planning.
        let mut arrivals = self.results.clone();
        arrivals.sort_unstable();
        let agg_start = us(times.task_planning_ms);
        let mut master_free = agg_start;
        for arrival in &arrivals {
            let start = master_free.max(*arrival);
            master_free = start + us(profile.agg_per_task_ms);
        }
        let complete = arrivals.len() == profile.tasks;
        times.task_aggregation_ms = to_ms(master_free.saturating_sub(agg_start));
        times.parallel_ms = to_ms(master_free);
        series().runs.inc();
        series().parallel_vus.observe(master_free);
        let end_ms = to_ms(self.clock.max(master_free));
        SimOutcome {
            times,
            complete,
            end_ms,
            workers: self
                .workers
                .into_iter()
                .map(|w| SimWorkerReport {
                    name: w.name,
                    tasks_done: w.tasks_done,
                    final_state: w.state,
                    signal_log: w.signal_log,
                    usage: w.usage,
                    intrusion_ms: to_ms(w.intrusion_us),
                })
                .collect(),
        }
    }
}

/// Runs one simulation.
pub fn simulate(cfg: SimConfig) -> SimOutcome {
    assert_eq!(
        cfg.workers.len(),
        cfg.traces.len(),
        "one trace slot per worker"
    );
    let reference = cfg.cost.reference_mhz;
    let workers: Vec<WState> = cfg
        .workers
        .iter()
        .zip(&cfg.traces)
        .map(|(spec, trace)| WState {
            name: spec.name.clone(),
            speed: spec.speed_factor(reference),
            state: WorkerState::Stopped,
            loaded: false,
            busy_until: None,
            class_loading: false,
            pending: VecDeque::new(),
            first_take: None,
            last_result: 0,
            tasks_done: 0,
            signal_log: Vec::new(),
            usage: Vec::new(),
            trace: trace.clone(),
            intrusion_us: 0,
        })
        .collect();
    let mut engine = InferenceEngine::new(cfg.cost.thresholds, cfg.cost.hysteresis);
    for w in 0..workers.len() {
        engine.register(WorkerId(w as u64 + 1));
    }
    let horizon = us(cfg.horizon_ms);
    let tasks = cfg.profile.tasks;
    let sim = Sim {
        cfg,
        clock: 0,
        seq: 0,
        queue: BinaryHeap::new(),
        workers,
        engine,
        tasks_ready: 0,
        tasks_claimed: 0,
        results: Vec::with_capacity(tasks),
        horizon,
    };
    sim.run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_profile(tasks: usize) -> AppProfile {
        AppProfile {
            name: "test".into(),
            tasks,
            task_work_ms: 100.0,
            plan_fixed_ms: 10.0,
            plan_per_task_ms: 2.0,
            agg_per_task_ms: 3.0,
            testbed: acc_cluster::ray_tracing_testbed(),
        }
    }

    #[test]
    fn idle_cluster_completes_all_tasks() {
        let out = simulate(SimConfig::new(quick_profile(20), 3));
        assert!(out.complete);
        let done: u64 = out.workers.iter().map(|w| w.tasks_done).sum();
        assert_eq!(done, 20);
        assert!(out.times.parallel_ms > 0.0);
        assert!(out.times.max_worker_ms > 0.0);
        // Every worker was started exactly once.
        for w in &out.workers {
            assert_eq!(
                w.signal_log
                    .iter()
                    .filter(|e| e.signal == Signal::Start)
                    .count(),
                1,
                "{}",
                w.name
            );
        }
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = simulate(SimConfig::new(quick_profile(30), 4));
        let b = simulate(SimConfig::new(quick_profile(30), 4));
        assert_eq!(a.times, b.times);
        assert_eq!(a.end_ms, b.end_ms);
    }

    #[test]
    fn more_workers_do_not_slow_things_down() {
        let t1 = simulate(SimConfig::new(quick_profile(40), 1))
            .times
            .parallel_ms;
        let t2 = simulate(SimConfig::new(quick_profile(40), 2))
            .times
            .parallel_ms;
        let t4 = simulate(SimConfig::new(quick_profile(40), 4))
            .times
            .parallel_ms;
        assert!(t2 < t1, "t1 {t1} t2 {t2}");
        assert!(t4 <= t2 + 1.0, "t2 {t2} t4 {t4}");
    }

    #[test]
    fn loaded_worker_is_stopped_and_does_no_work() {
        let mut cfg = SimConfig::new(quick_profile(20), 2);
        cfg.traces[0] = Some(LoadTrace::simulator2(600_000));
        let out = simulate(cfg);
        assert!(out.complete);
        assert_eq!(out.workers[0].tasks_done, 0, "hogged worker did nothing");
        assert_eq!(out.workers[1].tasks_done, 20);
        assert_eq!(out.workers[0].final_state, WorkerState::Stopped);
    }

    #[test]
    fn moderately_loaded_worker_is_paused_not_started() {
        let mut cfg = SimConfig::new(quick_profile(10), 2);
        // Simulator 1 keeps the node in the pause band from the start, so
        // the worker is never started at all.
        cfg.traces[0] = Some(LoadTrace::simulator1(600_000));
        let out = simulate(cfg);
        assert!(out.complete);
        assert_eq!(out.workers[0].tasks_done, 0);
        assert!(out.workers[0].signal_log.is_empty(), "never started");
    }

    #[test]
    fn horizon_caps_incomplete_runs() {
        let mut cfg = SimConfig::new(quick_profile(50), 1);
        // The only worker is hogged forever: nothing completes.
        cfg.traces[0] = Some(LoadTrace::simulator2(10_000_000));
        cfg.horizon_ms = 2_000.0;
        let out = simulate(cfg);
        assert!(!out.complete);
        assert_eq!(out.workers[0].tasks_done, 0);
    }

    #[test]
    fn start_pays_class_load_resume_does_not() {
        // Load rises into the pause band mid-run, then clears.
        let mut cfg = SimConfig::new(quick_profile(200), 1);
        cfg.traces[0] = Some(LoadTrace::new(
            vec![
                acc_cluster::LoadPhase {
                    at_ms: 3_000,
                    level: 40,
                    kind: acc_cluster::TrafficKind::Http,
                },
                acc_cluster::LoadPhase {
                    at_ms: 5_000,
                    level: 0,
                    kind: acc_cluster::TrafficKind::Idle,
                },
            ],
            8_000,
        ));
        cfg.horizon_ms = 60_000.0;
        let out = simulate(cfg);
        let log = &out.workers[0].signal_log;
        let start = log.iter().find(|e| e.signal == Signal::Start).unwrap();
        let pause = log.iter().find(|e| e.signal == Signal::Pause).unwrap();
        let resume = log.iter().find(|e| e.signal == Signal::Resume).unwrap();
        assert!(
            start.reaction_ms() >= 300,
            "Start pays ≈350 ms class load, got {}",
            start.reaction_ms()
        );
        assert!(resume.reaction_ms() < 150, "Resume skips class load");
        assert!(pause.reaction_ms() < 150, "Pause acts between tasks");
    }

    #[test]
    fn intrusion_counts_only_loaded_overlap() {
        // Worker computes from t=0; load rises into the pause band at 1 s
        // with a slow poll, so some compute overlaps the loaded window.
        let mut cfg = SimConfig::new(quick_profile(100), 1);
        cfg.cost.poll_interval_ms = 5_000.0;
        cfg.traces[0] = Some(LoadTrace::new(
            vec![acc_cluster::LoadPhase {
                at_ms: 1_000,
                level: 40,
                kind: acc_cluster::TrafficKind::Http,
            }],
            4_000,
        ));
        cfg.horizon_ms = 60_000.0;
        let out = simulate(cfg);
        let w = &out.workers[0];
        assert!(
            w.intrusion_ms > 500.0,
            "compute overlapped the loaded window: {}",
            w.intrusion_ms
        );
        assert!(
            w.intrusion_ms <= 3_100.0,
            "intrusion bounded by the loaded window: {}",
            w.intrusion_ms
        );

        // With no trace there is never any intrusion.
        let clean = simulate(SimConfig::new(quick_profile(20), 1));
        assert_eq!(clean.workers[0].intrusion_ms, 0.0);
    }

    #[test]
    fn usage_sampling_records_compute_spikes() {
        let mut cfg = SimConfig::new(quick_profile(30), 1);
        cfg.usage_sample_ms = 20.0;
        let out = simulate(cfg);
        let usage = &out.workers[0].usage;
        assert!(!usage.is_empty());
        assert!(
            usage.iter().any(|p| p.load >= 98),
            "compute shows as ~98% CPU"
        );
    }
}
