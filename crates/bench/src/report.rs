//! Plain-text tables and plots for the repro reports.

/// A simple fixed-width text table.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                line.push_str(&format!(" {cell:>w$} |"));
            }
            line
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push('|');
        for w in &widths {
            out.push_str(&format!("{}|", "-".repeat(w + 2)));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a millisecond quantity compactly.
pub fn format_ms(ms: f64) -> String {
    if ms >= 10_000.0 {
        format!("{:.1}s", ms / 1000.0)
    } else {
        format!("{ms:.0}ms")
    }
}

/// Renders a crude ASCII time-series plot (for the CPU-usage histories of
/// Figures 9a–11a): one row per bucket, `#` bars scaled to 100%.
pub fn ascii_plot(points: &[(u64, u64)], buckets: usize) -> String {
    if points.is_empty() || buckets == 0 {
        return String::from("(no samples)\n");
    }
    let t_max = points.last().map(|p| p.0).unwrap_or(0).max(1);
    let mut out = String::new();
    for b in 0..buckets {
        let lo = t_max * b as u64 / buckets as u64;
        let hi = t_max * (b as u64 + 1) / buckets as u64;
        let window: Vec<u64> = points
            .iter()
            .filter(|p| p.0 >= lo && p.0 < hi.max(lo + 1))
            .map(|p| p.1)
            .collect();
        let level = if window.is_empty() {
            0
        } else {
            window.iter().sum::<u64>() / window.len() as u64
        };
        let bar = "#".repeat((level as usize * 50) / 100);
        out.push_str(&format!("{:>7} ms |{:<50}| {:>3}%\n", lo, bar, level));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["workers", "time"]);
        t.row(vec!["1".into(), "100".into()]);
        t.row(vec!["13".into(), "9".into()]);
        let s = t.render();
        assert!(s.contains("| workers | time |"));
        assert!(s.lines().count() == 4);
        let widths: Vec<usize> = s.lines().map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "aligned:\n{s}");
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_checks_columns() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }

    #[test]
    fn format_ms_scales() {
        assert_eq!(format_ms(532.4), "532ms");
        assert_eq!(format_ms(12_345.0), "12.3s");
    }

    #[test]
    fn ascii_plot_shapes() {
        let points: Vec<(u64, u64)> = (0..100)
            .map(|t| (t * 10, if t < 50 { 0 } else { 100 }))
            .collect();
        let plot = ascii_plot(&points, 10);
        let lines: Vec<&str> = plot.lines().collect();
        assert_eq!(lines.len(), 10);
        assert!(lines[0].ends_with("0%"));
        assert!(lines[9].ends_with("100%"));
        assert_eq!(ascii_plot(&[], 5), "(no samples)\n");
    }
}
