//! Job-profiler benchmarks: what the profiling plane costs where it
//! actually runs.
//!
//! * `record_task` — the master-side fold of one result's `TaskTiming`
//!   into the job's waterfall (the only profiler work on the result
//!   hot path).
//! * `render_json` — building the `/profile.json` body over a populated
//!   job (route-handler cost, off the hot path).
//! * `retention_decision` — the worker-side tail-retention check: a
//!   percentile over the job's compute history plus the sample record.
//!   This runs once per *task end*, so its budget is generous — tasks
//!   are milliseconds, the decision must stay well under one.
//! * the headline **overhead guard**: the `write_take/64` hot-path
//!   cycle (same shape as `space_ops`) with the profiler folding every
//!   result must stay within 5% of the bare cycle. Measured runs
//!   assert the gate and export `BENCH_profile.json` at the repo root.
//!
//! Custom harness (no `criterion_group!`): the overhead arm needs the
//! same cycle measured twice under identical conditions, which is
//! clearer with explicit timing loops. Output stays `label: N ns/iter`
//! compatible.

use acc_cluster::{JobProfiler, TaskTiming};
use acc_telemetry::HistoryRing;
use acc_tuplespace::{Space, Template, Tuple};

/// Median per-iteration nanoseconds over `rounds` timed batches.
fn median_ns(mut f: impl FnMut(), rounds: usize, per_round: u64) -> f64 {
    let mut samples: Vec<f64> = (0..rounds)
        .map(|_| {
            let start = std::time::Instant::now();
            for _ in 0..per_round {
                f();
            }
            start.elapsed().as_nanos() as f64 / per_round as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn task_tuple(id: i64) -> Tuple {
    Tuple::build("acc.task")
        .field("job", "bench")
        .field("task_id", id)
        .field("payload", vec![0u8; 64])
        .done()
}

const TIMING: TaskTiming = TaskTiming {
    wait_us: 120,
    xfer_us: 60,
    compute_us: 40_000,
    write_us: 90,
};

fn main() {
    let measure = std::env::args().any(|a| a == "--bench");
    let (rounds, per_round) = if measure { (25, 2_000) } else { (1, 1) };
    // The flight recorder is on for the whole run, as in any cluster
    // deployment — parity with the `space_ops` numbers.
    acc_telemetry::flight::install();
    let mut results: Vec<(String, f64)> = Vec::new();

    // ----------------------------------------------------------------
    // record_task: the per-result fold.
    // ----------------------------------------------------------------
    let profiler = JobProfiler::new();
    profiler.job_started("bench");
    let mut rec = profiler.recorder("bench");
    let mut task_id = 0u64;
    let record_ns = median_ns(
        || {
            rec.record_task(task_id, "w-0", &TIMING, false);
            task_id += 1;
        },
        rounds,
        per_round,
    );
    drop(rec);
    results.push(("profile/record_task".into(), record_ns));

    // ----------------------------------------------------------------
    // render_json: the /profile.json route over a populated job —
    // several workers, chains past the per-worker detail cap.
    // ----------------------------------------------------------------
    let rendered = JobProfiler::new();
    rendered.job_started("bench");
    for id in 0..2_000u64 {
        let worker = format!("w-{}", id % 4);
        rendered.record_task("bench", id, &worker, &TIMING, false);
    }
    rendered.job_finished("bench", 1_500, 900, 80_000);
    let stragglers = vec!["w-3".to_owned()];
    let render_ns = median_ns(
        || {
            std::hint::black_box(rendered.render_json(&stragglers));
        },
        rounds,
        per_round.min(200),
    );
    results.push(("profile/render_json".into(), render_ns));

    // ----------------------------------------------------------------
    // retention_decision: percentile over a full history ring + record,
    // as the worker runs it at every task end.
    // ----------------------------------------------------------------
    let ring = HistoryRing::new(256);
    for i in 0..256 {
        ring.record(0, 35_000 + (i as i64 * 37) % 10_000);
    }
    let retention_ns = median_ns(
        || {
            let threshold = ring.percentile(0.95);
            ring.record(0, 40_000);
            std::hint::black_box(threshold);
        },
        rounds,
        per_round.min(500),
    );
    results.push(("profile/retention_decision".into(), retention_ns));

    // ----------------------------------------------------------------
    // Overhead guard: the write_take/64 cycle bare vs. with the
    // profiler folding every result.
    // ----------------------------------------------------------------
    let space = Space::new("bench-bare");
    let template = Template::of_type("acc.task");
    let mut i = 0i64;
    let bare_ns = median_ns(
        || {
            space.write(task_tuple(i)).unwrap();
            i += 1;
            std::hint::black_box(space.take_if_exists(&template).unwrap().unwrap());
        },
        rounds,
        per_round,
    );
    let space = Space::new("bench-profiled");
    let guarded = JobProfiler::new();
    guarded.job_started("bench");
    // The master's hot path records through a buffered `JobRecorder`,
    // not `record_task` on the shared profiler — measure what it runs.
    let mut recorder = guarded.recorder("bench");
    let mut j = 0i64;
    let profiled_ns = median_ns(
        || {
            space.write(task_tuple(j)).unwrap();
            std::hint::black_box(space.take_if_exists(&template).unwrap().unwrap());
            recorder.record_task(j as u64, "w-0", &TIMING, false);
            j += 1;
        },
        rounds,
        per_round,
    );
    drop(recorder);
    results.push(("profile/write_take_64_bare".into(), bare_ns));
    results.push(("profile/write_take_64_profiled".into(), profiled_ns));
    let overhead_pct = (profiled_ns / bare_ns - 1.0) * 100.0;

    for (label, ns) in &results {
        if measure {
            println!("{label}: {ns:.0} ns/iter");
        } else {
            println!("{label}: ok (test mode, 1 iter)");
        }
    }

    if !measure {
        println!("profile: smoke ok");
        return;
    }

    println!("profile/write_take_64_overhead: {overhead_pct:+.1}%");

    // Budgets — only on measured runs (a single test-mode iteration
    // would be noise).
    assert!(
        overhead_pct <= 5.0,
        "profiler overhead on write_take/64 is {overhead_pct:+.1}% (gate 5%)"
    );
    assert!(
        retention_ns < 20_000.0,
        "retention decision took {retention_ns:.0} ns (budget 20 us per task end)"
    );

    let mut json = String::from("{\n  \"bench\": \"profile\",\n  \"results_ns\": {\n");
    for (i, (label, ns)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!("    \"{label}\": {ns:.0}{comma}\n"));
    }
    json.push_str(&format!(
        "  }},\n  \"write_take_64_overhead_pct\": {overhead_pct:.2}\n}}\n"
    ));
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_profile.json");
    std::fs::write(out, json).unwrap();
    println!("profile: wrote {out}");
}
