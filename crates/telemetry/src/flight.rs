//! The flight recorder: an always-on, bounded, lock-light ring of the
//! last N trace records per thread, cheap enough to leave installed in
//! production.
//!
//! Unlike the test-only [`RingBufferSubscriber`](crate::RingBufferSubscriber)
//! — one global ring behind one mutex — the flight recorder keeps one
//! ring *per thread*, reached through a thread-local handle, so recording
//! takes an uncontended lock and never blocks on other threads. The
//! point is crash forensics: a worker that dies mid-task leaves its last
//! seconds of spans readable, either on demand (the `/spans` endpoint
//! calls [`dump_json`]) or post-mortem (the panic hook installed by
//! [`install_panic_hook`] writes `flight-<pid>.json`).
//!
//! Rings are bounded; when one overflows the oldest record is dropped and
//! the `telemetry.flight.dropped_events` counter is bumped, so loss is
//! visible rather than silent.

use std::cell::Cell;
use std::collections::VecDeque;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use crate::registry::{json_escape, registry};
use crate::trace::{FieldValue, TraceEvent, TraceKind};

/// Records retained per thread before the oldest is dropped.
pub const DEFAULT_CAPACITY: usize = 2048;

/// One retained trace record, stamped with its capture time.
#[derive(Debug, Clone)]
pub struct FlightRecord {
    /// The record itself (ids, kind, name, fields, depth).
    pub event: TraceEvent,
    /// Microseconds since the recorder was installed.
    pub t_us: u64,
}

/// A thread's ring. Leaked on first record from that thread — rings must
/// outlive their thread (the panic hook dumps them post-mortem), there is
/// exactly one per thread ever, and a `&'static` keeps the hot path free
/// of `Arc` reference-count traffic.
type Ring = &'static Mutex<VecDeque<FlightRecord>>;

struct ThreadRing {
    label: String,
    ring: Ring,
}

struct Recorder {
    epoch: Instant,
    capacity: usize,
    /// Every thread's ring, appended on first record from that thread.
    /// Locked only to register a thread or to dump.
    threads: Mutex<Vec<ThreadRing>>,
    /// `telemetry.flight.dropped_events`, resolved once — a full ring hits
    /// the overflow branch on every record, which must not pay a registry
    /// lookup each time.
    dropped: std::sync::Arc<crate::Counter>,
}

static RECORDER: OnceLock<Recorder> = OnceLock::new();
static FLIGHT_ON: AtomicBool = AtomicBool::new(false);
static THREAD_SEQ: AtomicUsize = AtomicUsize::new(0);
static DUMP_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
static PANIC_HOOK: OnceLock<()> = OnceLock::new();

thread_local! {
    static MY_RING: Cell<Option<Ring>> = const { Cell::new(None) };
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Turns the flight recorder on (idempotent). From here on every span
/// enter/exit and event is retained in the calling thread's ring — and
/// [`crate::trace::enabled`] reports true, so instrumented code starts
/// building fields.
pub fn install() {
    RECORDER.get_or_init(|| Recorder {
        epoch: Instant::now(),
        capacity: DEFAULT_CAPACITY,
        threads: Mutex::new(Vec::new()),
        dropped: registry().counter("telemetry.flight.dropped_events"),
    });
    FLIGHT_ON.store(true, Ordering::Release);
    crate::trace::set_flight_active(true);
}

/// True while the recorder is on.
pub fn installed() -> bool {
    FLIGHT_ON.load(Ordering::Relaxed)
}

/// Turns the recorder off. Retained records stay dumpable until
/// [`clear`].
pub fn uninstall() {
    crate::trace::set_flight_active(false);
    FLIGHT_ON.store(false, Ordering::Release);
}

/// Empties every thread's ring (records, not registrations).
pub fn clear() {
    if let Some(rec) = RECORDER.get() {
        for t in lock(&rec.threads).iter() {
            lock(t.ring).clear();
        }
    }
}

/// First record from a thread: leak its ring and register it for dumps.
#[cold]
fn register_ring(rec: &Recorder) -> Ring {
    let ring: Ring = Box::leak(Box::new(Mutex::new(VecDeque::with_capacity(64))));
    let label = std::thread::current()
        .name()
        .map(str::to_owned)
        .unwrap_or_else(|| format!("thread-{}", THREAD_SEQ.fetch_add(1, Ordering::Relaxed)));
    lock(&rec.threads).push(ThreadRing { label, ring });
    ring
}

/// Appends one record to the calling thread's ring. Called by the trace
/// dispatcher with ownership of the event — the common path takes one
/// uncontended mutex and does no allocation beyond ring growth.
pub(crate) fn record(event: TraceEvent) {
    if !FLIGHT_ON.load(Ordering::Relaxed) {
        return;
    }
    let Some(rec) = RECORDER.get() else {
        return;
    };
    let t_us = rec.epoch.elapsed().as_micros() as u64;
    let ring = MY_RING.with(|cell| match cell.get() {
        Some(r) => r,
        None => {
            let r = register_ring(rec);
            cell.set(Some(r));
            r
        }
    });
    let mut buf = lock(ring);
    if buf.len() >= rec.capacity {
        buf.pop_front();
        rec.dropped.inc();
    }
    buf.push_back(FlightRecord { event, t_us });
}

/// Serializes every thread's ring as JSON. The format is deliberately
/// line-oriented — one event object per line — so
/// [`TraceAssembler::add_flight_json`](crate::context::TraceAssembler::add_flight_json)
/// can parse it without a general JSON parser, and a truncated file
/// (crash mid-write) still yields every complete line. Ids are hex
/// strings to dodge 64-bit precision loss in consumers that read JSON
/// numbers as doubles.
pub fn dump_json() -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("\"pid\":{},\n", std::process::id()));
    out.push_str(&format!(
        "\"dropped\":{},\n",
        registry().counter("telemetry.flight.dropped_events").get()
    ));
    out.push_str("\"threads\":[\n");
    if let Some(rec) = RECORDER.get() {
        let threads = lock(&rec.threads);
        for (ti, t) in threads.iter().enumerate() {
            out.push_str(&format!("{{\"thread\":\"{}\",\n", json_escape(&t.label)));
            out.push_str("\"events\":[\n");
            let buf = lock(t.ring);
            for (ei, r) in buf.iter().enumerate() {
                write_record(&mut out, r);
                out.push_str(if ei + 1 < buf.len() { ",\n" } else { "\n" });
            }
            out.push_str("]}");
            out.push_str(if ti + 1 < threads.len() { ",\n" } else { "\n" });
        }
    }
    out.push_str("]}\n");
    out
}

fn write_record(out: &mut String, r: &FlightRecord) {
    let e = &r.event;
    let (kind, elapsed) = match e.kind {
        TraceKind::SpanEnter => ("enter", None),
        TraceKind::SpanExit { elapsed_us } => ("exit", Some(elapsed_us)),
        TraceKind::Event => ("event", None),
    };
    out.push_str(&format!(
        "{{\"kind\":\"{kind}\",\"name\":\"{}\",\"trace\":\"{:x}\",\"span\":\"{:x}\",\"parent\":\"{:x}\",\"depth\":{},\"t_us\":{}",
        json_escape(e.name),
        e.trace_id,
        e.span_id,
        e.parent_span_id,
        e.depth,
        r.t_us,
    ));
    if let Some(us) = elapsed {
        out.push_str(&format!(",\"elapsed_us\":{us}"));
    }
    if !e.fields.is_empty() {
        out.push_str(",\"fields\":{");
        for (i, (k, v)) in e.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let rendered = match v {
                FieldValue::Str(s) => format!("\"{}\"", json_escape(s)),
                FieldValue::F64(f) if !f.is_finite() => format!("\"{f}\""),
                other => format!("\"{other}\""),
            };
            out.push_str(&format!("\"{}\":{rendered}", json_escape(k)));
        }
        out.push('}');
    }
    out.push('}');
}

/// Writes [`dump_json`] to `path` (atomically enough for forensics:
/// create + write + flush).
pub fn dump_to(path: &Path) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(dump_json().as_bytes())?;
    f.flush()
}

/// Overrides where the panic hook writes its dump (default: the
/// `ACC_FLIGHT_DIR` environment variable, then the current directory).
/// A process-global setting, safe to call from tests running in
/// parallel — unlike mutating the environment.
pub fn set_dump_dir(dir: impl Into<PathBuf>) {
    *lock(&DUMP_DIR) = Some(dir.into());
}

fn dump_path() -> PathBuf {
    let dir = lock(&DUMP_DIR)
        .clone()
        .or_else(|| std::env::var_os("ACC_FLIGHT_DIR").map(PathBuf::from))
        .unwrap_or_else(|| PathBuf::from("."));
    dir.join(format!("flight-{}.json", std::process::id()))
}

/// Installs a panic hook (once per process; chains the previous hook)
/// that writes the flight dump to `flight-<pid>.json` whenever any
/// thread panics while the recorder is on — so a crash leaves its last
/// seconds of trace on disk.
pub fn install_panic_hook() {
    PANIC_HOOK.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if installed() {
                let path = dump_path();
                if dump_to(&path).is_ok() {
                    eprintln!("[flight] wrote {}", path.display());
                }
            }
            previous(info);
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::TraceAssembler;
    use crate::TEST_EXCLUSIVE as EXCLUSIVE;

    #[test]
    fn records_and_dumps_per_thread() {
        let _guard = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
        install();
        clear();
        {
            let _span = crate::span!("flight.main", job = "j\"1");
            crate::event!("flight.tick", n = 3u64);
        }
        std::thread::Builder::new()
            .name("flight-side".into())
            .spawn(|| {
                let _span = crate::span!("flight.side");
            })
            .unwrap()
            .join()
            .unwrap();
        let dump = dump_json();
        uninstall();

        let mut asm = TraceAssembler::new();
        let added = asm.add_flight_json("me", &dump);
        assert!(added >= 2, "expected both spans in dump:\n{dump}");
        assert!(asm.find("flight.main").is_some());
        let side = asm.find("flight.side").unwrap();
        assert_eq!(side.thread, "flight-side");
        assert!(dump.contains("j\\\"1"), "field string escaped: {dump}");
        clear();
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let _guard = EXCLUSIVE.lock().unwrap_or_else(|e| e.into_inner());
        install();
        clear();
        let dropped = registry().counter("telemetry.flight.dropped_events");
        let before = dropped.get();
        for _ in 0..(DEFAULT_CAPACITY + 10) {
            crate::event!("flight.spam");
        }
        uninstall();
        let rec = RECORDER.get().unwrap();
        let my_len = MY_RING.with(|c| c.get().map(|r| lock(r).len()).unwrap_or_default());
        assert!(my_len <= rec.capacity);
        assert!(
            dropped.get() >= before + 10,
            "dropped counter must move on overflow"
        );
        clear();
    }

    #[test]
    fn dump_without_install_is_valid() {
        // No EXCLUSIVE needed: read-only.
        let dump = dump_json();
        assert!(dump.contains("\"threads\":["));
    }
}
