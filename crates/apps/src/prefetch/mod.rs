//! Web-page pre-fetching based on PageRank (paper §5.1.3).
//!
//! The goal is to optimise user-perceived access time by pre-fetching the
//! pages a user is likely to request next. For each requested page inside a
//! *web page cluster* (a group of closely related pages, e.g. one
//! company's site), the links it contains are parsed out and used to
//! populate a stochastic matrix:
//!
//! 1. each page `i` corresponds to row `i` and column `i`;
//! 2. if page `j` has `n` successors, entry `(i, j)` is `1/n` when `i` is
//!    one of them, 0 otherwise.
//!
//! The matrix drives iterative eigenvector (power-iteration) computation
//! of page ranks; the most important linked pages are pre-fetched into a
//! cache. Parallelism distributes matrix strips (paper: 500×500 matrix,
//! strips of 20 ⇒ 25 tasks) with an inter-iteration barrier.

mod cache;
mod matrix;
mod pagerank;
mod seq;
mod tasks;
mod web;

pub use cache::{simulate_sessions, LruCache, SessionStats};
pub use matrix::StochasticMatrix;
pub use pagerank::{top_linked_pages, PageRank};
pub use seq::pagerank_sequential;
pub use tasks::{run_pagerank_parallel, PrefetchApp, StripTask};
pub use web::{generate_cluster, parse_links, LinkGraph, WebPage};
