//! Experiment 3 — dynamic worker behaviour under varying load (paper
//! §5.2.3).
//!
//! Three runs per application: none, 25% and 50% of the available workers
//! loaded by load simulator 2 for the whole run. The four reported
//! parameters: Maximum Worker Time, Maximum Master Overhead, Task Planning
//! and Aggregation Time, and Total Parallel Time. Max worker time and max
//! master overhead stay (near) constant across the runs — the framework
//! simply routes around stopped workers — while total parallel time
//! degrades gracefully as capacity shrinks.

use acc_cluster::LoadTrace;

use crate::cluster::{simulate, SimConfig};
use crate::model::AppProfile;

/// One row of the dynamic-behaviour experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct DynamicsRow {
    /// Fraction of workers loaded by simulator 2 (0.0 / 0.25 / 0.5).
    pub loaded_fraction: f64,
    /// How many workers that is.
    pub loaded_workers: usize,
    /// Maximum worker computation time, ms.
    pub max_worker_ms: f64,
    /// Maximum instantaneous master overhead, ms.
    pub max_master_overhead_ms: f64,
    /// Task planning + aggregation time, ms.
    pub planning_and_aggregation_ms: f64,
    /// Total parallel time, ms.
    pub total_parallel_ms: f64,
    /// Tasks completed by loaded workers (should be 0: non-intrusiveness).
    pub tasks_on_loaded_workers: u64,
}

/// Runs the three load levels for one application on its full testbed.
pub fn run_dynamics(profile: &AppProfile) -> Vec<DynamicsRow> {
    [0.0, 0.25, 0.5]
        .into_iter()
        .map(|fraction| run_one(profile, fraction))
        .collect()
}

fn run_one(profile: &AppProfile, fraction: f64) -> DynamicsRow {
    let n = profile.testbed.worker_count();
    let loaded = (n as f64 * fraction).floor() as usize;
    let mut cfg = SimConfig::new(profile.clone(), n);
    for trace in cfg.traces.iter_mut().take(loaded) {
        *trace = Some(LoadTrace::simulator2(3_600_000));
    }
    cfg.horizon_ms = 3_600_000.0;
    let out = simulate(cfg);
    assert!(out.complete, "the unloaded workers must finish the job");
    let tasks_on_loaded_workers = out.workers.iter().take(loaded).map(|w| w.tasks_done).sum();
    DynamicsRow {
        loaded_fraction: fraction,
        loaded_workers: loaded,
        max_worker_ms: out.times.max_worker_ms,
        max_master_overhead_ms: out.times.max_master_overhead_ms,
        planning_and_aggregation_ms: out.times.planning_and_aggregation_ms(),
        total_parallel_ms: out.times.parallel_ms,
        tasks_on_loaded_workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loaded_workers_never_compute() {
        for profile in AppProfile::all() {
            for row in run_dynamics(&profile) {
                assert_eq!(
                    row.tasks_on_loaded_workers, 0,
                    "{}: non-intrusiveness violated",
                    profile.name
                );
            }
        }
    }

    #[test]
    fn master_overhead_constant_across_load_levels() {
        for profile in AppProfile::all() {
            let rows = run_dynamics(&profile);
            let base = rows[0].max_master_overhead_ms;
            for row in &rows {
                assert!((row.max_master_overhead_ms - base).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn raytracing_parallel_time_degrades_gracefully() {
        let rows = run_dynamics(&AppProfile::ray_tracing());
        // Fewer workers ⇒ no faster; 50% loaded is slower than unloaded.
        assert!(rows[1].total_parallel_ms >= rows[0].total_parallel_ms - 1.0);
        assert!(rows[2].total_parallel_ms > rows[0].total_parallel_ms);
        // But degradation is bounded: halving workers costs at most ~2.5×.
        assert!(rows[2].total_parallel_ms < 2.5 * rows[0].total_parallel_ms);
    }

    #[test]
    fn pricing_parallel_time_insensitive_while_planning_bound() {
        // Option pricing with 13 workers is planning-bound, so losing 25%
        // of the workers barely moves total parallel time.
        let rows = run_dynamics(&AppProfile::option_pricing());
        let ratio = rows[1].total_parallel_ms / rows[0].total_parallel_ms;
        assert!(ratio < 1.35, "ratio {ratio}");
    }
}
