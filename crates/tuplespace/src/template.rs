//! Templates: associative, value-based matching against tuples.
//!
//! A [`Template`] plays the role of a JavaSpaces template entry: specified
//! fields must match, unspecified fields are wildcards (the analogue of
//! `null` template fields). On top of exact matching we support small
//! extensions (`OneOf`, integer/float ranges) which the framework uses for
//! e.g. "any task of this job".

use std::fmt;
use std::sync::Arc;

use crate::tuple::Tuple;
use crate::value::Value;

/// A per-field matching rule.
#[derive(Debug, Clone, PartialEq)]
pub enum Constraint {
    /// Field must exist and equal this value exactly.
    Exact(Value),
    /// Field must exist and equal one of these values.
    OneOf(Vec<Value>),
    /// Field must be an `Int` within `[lo, hi]` inclusive.
    IntRange(i64, i64),
    /// Field must be a `Float` within `[lo, hi]` inclusive (NaN never matches).
    FloatRange(f64, f64),
    /// Field must exist (any value).
    Exists,
}

impl Constraint {
    /// Does `value` satisfy this constraint?
    pub fn matches(&self, value: &Value) -> bool {
        match self {
            Constraint::Exact(want) => want == value,
            Constraint::OneOf(set) => set.iter().any(|want| want == value),
            Constraint::IntRange(lo, hi) => value.as_int().is_some_and(|v| v >= *lo && v <= *hi),
            Constraint::FloatRange(lo, hi) => {
                value.as_float().is_some_and(|v| v >= *lo && v <= *hi)
            }
            Constraint::Exists => true,
        }
    }
}

/// An associative-lookup pattern over tuples.
///
/// Both parts are ref-counted, so `Clone` is two refcount bumps — requests
/// on the wire path clone templates freely without copying constraint
/// payloads.
#[derive(Debug, Clone, PartialEq)]
pub struct Template {
    /// `None` matches any tuple type.
    type_name: Option<Arc<str>>,
    /// Sorted by field name.
    constraints: Arc<[(String, Constraint)]>,
}

impl Template {
    /// Starts building a template for the given tuple type.
    /// (`Into<Arc<str>>` so a `&str` name costs one allocation, not a
    /// `String` detour.)
    pub fn build(type_name: impl Into<Arc<str>>) -> TemplateBuilder {
        TemplateBuilder {
            type_name: Some(type_name.into()),
            constraints: Vec::new(),
        }
    }

    /// Starts building a template that matches any tuple type.
    pub fn any_type() -> TemplateBuilder {
        TemplateBuilder {
            type_name: None,
            constraints: Vec::new(),
        }
    }

    /// A template matching every tuple of `type_name` (no field constraints).
    pub fn of_type(type_name: impl Into<Arc<str>>) -> Template {
        Template::build(type_name).done()
    }

    /// The type this template selects, if any.
    pub fn type_name(&self) -> Option<&str> {
        self.type_name.as_deref()
    }

    /// The field constraints, sorted by field name.
    pub fn constraints(&self) -> &[(String, Constraint)] {
        &self.constraints
    }

    /// True when `tuple` satisfies the template: the type matches (or the
    /// template is type-wildcarded) and every constrained field matches.
    /// Fields of the tuple not mentioned by the template are ignored —
    /// JavaSpaces `null`-field semantics.
    pub fn matches(&self, tuple: &Tuple) -> bool {
        if let Some(ty) = &self.type_name {
            if ty.as_ref() != tuple.type_name() {
                return false;
            }
        }
        self.constraints
            .iter()
            .all(|(name, c)| tuple.get(name).map(|v| c.matches(v)).unwrap_or(false))
    }
}

impl fmt::Display for Template {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.type_name {
            Some(ty) => write!(f, "{ty}?{{")?,
            None => write!(f, "*?{{")?,
        }
        for (i, (n, c)) in self.constraints.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match c {
                Constraint::Exact(v) => write!(f, "{n} == {v}")?,
                Constraint::OneOf(vs) => write!(f, "{n} in {{{} options}}", vs.len())?,
                Constraint::IntRange(lo, hi) => write!(f, "{n} in {lo}..={hi}")?,
                Constraint::FloatRange(lo, hi) => write!(f, "{n} in {lo}..={hi}")?,
                Constraint::Exists => write!(f, "{n} exists")?,
            }
        }
        write!(f, "}}")
    }
}

/// Builder for [`Template`].
#[derive(Debug)]
pub struct TemplateBuilder {
    type_name: Option<Arc<str>>,
    constraints: Vec<(String, Constraint)>,
}

impl Template {
    /// Builds a template straight from decoded parts; used by the codec so
    /// interned type names survive decode without re-allocation.
    pub(crate) fn from_decoded(
        type_name: Option<Arc<str>>,
        mut constraints: Vec<(String, Constraint)>,
    ) -> Template {
        if !constraints.windows(2).all(|w| w[0].0 < w[1].0) {
            // Replicate builder semantics: sort, later duplicates win.
            let mut out: Vec<(String, Constraint)> = Vec::with_capacity(constraints.len());
            for (name, c) in constraints {
                if let Some(slot) = out.iter_mut().find(|(n, _)| *n == name) {
                    slot.1 = c;
                } else {
                    out.push((name, c));
                }
            }
            out.sort_by(|(a, _), (b, _)| a.cmp(b));
            constraints = out;
        }
        Template {
            type_name,
            constraints: constraints.into(),
        }
    }
}

impl TemplateBuilder {
    fn push(mut self, name: String, c: Constraint) -> Self {
        if let Some(slot) = self.constraints.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = c;
        } else {
            self.constraints.push((name, c));
        }
        self
    }

    /// Field must equal `value`.
    pub fn eq(self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.push(name.into(), Constraint::Exact(value.into()))
    }

    /// Field must equal one of `values`.
    pub fn one_of(self, name: impl Into<String>, values: Vec<Value>) -> Self {
        self.push(name.into(), Constraint::OneOf(values))
    }

    /// Field must be an integer in `[lo, hi]`.
    pub fn int_range(self, name: impl Into<String>, lo: i64, hi: i64) -> Self {
        self.push(name.into(), Constraint::IntRange(lo, hi))
    }

    /// Field must be a float in `[lo, hi]`.
    pub fn float_range(self, name: impl Into<String>, lo: f64, hi: f64) -> Self {
        self.push(name.into(), Constraint::FloatRange(lo, hi))
    }

    /// Field must exist, with any value.
    pub fn exists(self, name: impl Into<String>) -> Self {
        self.push(name.into(), Constraint::Exists)
    }

    /// Finishes the template.
    pub fn done(mut self) -> Template {
        self.constraints.sort_by(|(a, _), (b, _)| a.cmp(b));
        Template {
            type_name: self.type_name,
            constraints: self.constraints.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::Tuple;

    fn task(id: i64, kind: &str) -> Tuple {
        Tuple::build("task")
            .field("id", id)
            .field("kind", kind)
            .done()
    }

    #[test]
    fn type_only_template_matches_all_of_type() {
        let t = Template::of_type("task");
        assert!(t.matches(&task(1, "a")));
        assert!(t.matches(&task(2, "b")));
        assert!(!t.matches(&Tuple::build("result").done()));
    }

    #[test]
    fn any_type_matches_everything() {
        let t = Template::any_type().done();
        assert!(t.matches(&task(1, "a")));
        assert!(t.matches(&Tuple::build("result").done()));
    }

    #[test]
    fn exact_field_match() {
        let t = Template::build("task").eq("id", 3i64).done();
        assert!(t.matches(&task(3, "x")));
        assert!(!t.matches(&task(4, "x")));
    }

    #[test]
    fn missing_field_fails_constraint() {
        let t = Template::build("task").eq("owner", "w1").done();
        assert!(!t.matches(&task(1, "x")));
    }

    #[test]
    fn one_of_and_ranges() {
        let t = Template::build("task")
            .one_of("kind", vec!["a".into(), "b".into()])
            .int_range("id", 10, 20)
            .done();
        assert!(t.matches(&task(15, "a")));
        assert!(t.matches(&task(10, "b")));
        assert!(!t.matches(&task(15, "c")));
        assert!(!t.matches(&task(9, "a")));
        assert!(!t.matches(&task(21, "b")));
    }

    #[test]
    fn float_range_rejects_nan_and_wrong_type() {
        let c = Constraint::FloatRange(0.0, 1.0);
        assert!(c.matches(&Value::Float(0.5)));
        assert!(!c.matches(&Value::Float(f64::NAN)));
        assert!(!c.matches(&Value::Int(0)));
    }

    #[test]
    fn exists_constraint() {
        let t = Template::build("task").exists("kind").done();
        assert!(t.matches(&task(1, "anything")));
        assert!(!t.matches(&Tuple::build("task").field("id", 1i64).done()));
    }

    #[test]
    fn duplicate_constraint_overwrites() {
        let t = Template::build("task").eq("id", 1i64).eq("id", 2i64).done();
        assert!(!t.matches(&task(1, "x")));
        assert!(t.matches(&task(2, "x")));
        assert_eq!(t.constraints().len(), 1);
    }

    #[test]
    fn display_is_readable() {
        let t = Template::build("task").eq("id", 1i64).done();
        assert_eq!(format!("{t}"), "task?{id == 1}");
    }

    #[test]
    fn int_range_wrong_type_fails() {
        let t = Template::build("task").int_range("kind", 0, 5).done();
        assert!(!t.matches(&task(1, "x")));
    }
}
