//! Monte-Carlo estimators: GBM terminal-value simulation for European
//! options and the Broadie–Glasserman random-tree estimators for American
//! options.
//!
//! Broadie & Glasserman (1997) simulate a random tree with `b` branches per
//! node over `d` exercise dates. Backward induction over the tree yields a
//! *high-biased* estimator (it optimises the exercise decision using
//! information from all branches) and a *low-biased* estimator (a
//! leave-one-out construction that separates the decision from the value
//! estimate). Averaged over many trees the two bracket the true price —
//! the paper's "high estimate" and "low estimate" iterations.

use crate::rng::SplitMix64;

use super::model::OptionSpec;

/// One GBM step over `dt` years given a standard normal deviate `z`.
fn gbm_step(spec: &OptionSpec, s: f64, dt: f64, z: f64) -> f64 {
    let drift = (spec.rate - spec.dividend - 0.5 * spec.volatility * spec.volatility) * dt;
    let diffusion = spec.volatility * dt.sqrt() * z;
    s * (drift + diffusion).exp()
}

/// Plain European Monte-Carlo: the mean discounted terminal payoff over
/// `sims` GBM paths. Deterministic for a given `seed`.
pub fn european_mc_estimate(spec: &OptionSpec, sims: u32, seed: u64) -> f64 {
    let mut rng = SplitMix64::new(seed);
    let mut acc = 0.0;
    for _ in 0..sims {
        let z = rng.next_gaussian();
        let terminal = gbm_step(spec, spec.spot, spec.expiry, z);
        acc += spec.payoff(terminal);
    }
    (-spec.rate * spec.expiry).exp() * acc / sims as f64
}

/// European Monte-Carlo with antithetic variates: each draw `z` is paired
/// with `-z`, cancelling the odd moments of the payoff — the classic
/// variance-reduction technique for GBM payoffs. Same expectation as
/// [`european_mc_estimate`], materially lower variance per simulation.
pub fn european_mc_antithetic(spec: &OptionSpec, pairs: u32, seed: u64) -> f64 {
    let mut rng = SplitMix64::new(seed);
    let mut acc = 0.0;
    for _ in 0..pairs {
        let z = rng.next_gaussian();
        let up = spec.payoff(gbm_step(spec, spec.spot, spec.expiry, z));
        let down = spec.payoff(gbm_step(spec, spec.spot, spec.expiry, -z));
        acc += 0.5 * (up + down);
    }
    (-spec.rate * spec.expiry).exp() * acc / pairs as f64
}

/// One random-tree sample: returns `(high, low)` estimates for an American
/// option with `branching` branches per node and `depth` exercise dates.
/// Cost is `branching^depth` nodes — keep both small (the paper's tasks are
/// coarse because they run many trees, not big ones).
pub fn bg_tree_estimate(spec: &OptionSpec, branching: u32, depth: u32, seed: u64) -> (f64, f64) {
    assert!(branching >= 2, "leave-one-out needs at least 2 branches");
    assert!(depth >= 1);
    let mut rng = SplitMix64::new(seed);
    let dt = spec.expiry / depth as f64;
    let discount = (-spec.rate * dt).exp();
    node_estimate(spec, branching, depth, spec.spot, dt, discount, &mut rng)
}

/// Recursive high/low estimation at a node with underlying price `s` and
/// `remaining` exercise dates below it.
fn node_estimate(
    spec: &OptionSpec,
    branching: u32,
    remaining: u32,
    s: f64,
    dt: f64,
    discount: f64,
    rng: &mut SplitMix64,
) -> (f64, f64) {
    if remaining == 0 {
        let p = spec.payoff(s);
        return (p, p);
    }
    let b = branching as usize;
    let mut child_high = Vec::with_capacity(b);
    let mut child_low = Vec::with_capacity(b);
    for _ in 0..b {
        let z = rng.next_gaussian();
        let s_child = gbm_step(spec, s, dt, z);
        let (high, low) = node_estimate(spec, branching, remaining - 1, s_child, dt, discount, rng);
        child_high.push(high);
        child_low.push(low);
    }
    let exercise = spec.payoff(s);

    // High estimator: optimise the exercise decision against the full
    // continuation estimate — biased high.
    let cont_high = discount * child_high.iter().sum::<f64>() / b as f64;
    let high = exercise.max(cont_high);

    // Low estimator: for each branch j, decide using the OTHER branches'
    // mean and value with branch j — decision and value independent, so
    // biased low.
    let low_sum: f64 = (0..b)
        .map(|j| {
            let others: f64 = child_low
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != j)
                .map(|(_, v)| v)
                .sum();
            let cont_others = discount * others / (b - 1) as f64;
            if exercise >= cont_others {
                exercise
            } else {
                discount * child_low[j]
            }
        })
        .sum();
    let low = low_sum / b as f64;
    (high, low)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pricing::model::{black_scholes_price, OptionStyle, OptionType};

    fn european_call() -> OptionSpec {
        OptionSpec {
            style: OptionStyle::European,
            dividend: 0.0,
            ..OptionSpec::paper_default()
        }
    }

    #[test]
    fn european_mc_converges_to_black_scholes() {
        let spec = european_call();
        let mc = european_mc_estimate(&spec, 400_000, 12345);
        let bs = black_scholes_price(&spec);
        let rel = ((mc - bs) / bs).abs();
        assert!(rel < 0.02, "mc {mc} vs bs {bs} (rel {rel})");
    }

    #[test]
    fn european_mc_deterministic_per_seed() {
        let spec = european_call();
        assert_eq!(
            european_mc_estimate(&spec, 1000, 7),
            european_mc_estimate(&spec, 1000, 7)
        );
        assert_ne!(
            european_mc_estimate(&spec, 1000, 7),
            european_mc_estimate(&spec, 1000, 8)
        );
    }

    #[test]
    fn antithetic_matches_black_scholes() {
        let spec = european_call();
        let mc = european_mc_antithetic(&spec, 200_000, 999);
        let bs = black_scholes_price(&spec);
        assert!(((mc - bs) / bs).abs() < 0.02, "mc {mc} vs bs {bs}");
    }

    #[test]
    fn antithetic_reduces_variance() {
        // Estimate the same price many times with equal simulation budgets;
        // the antithetic estimator's spread must be smaller.
        let spec = european_call();
        let trials = 60;
        let sims = 2_000u32;
        let spread = |estimates: &[f64]| {
            let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
            estimates.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / estimates.len() as f64
        };
        let plain: Vec<f64> = (0..trials)
            .map(|i| european_mc_estimate(&spec, sims, 10_000 + i * 7_919))
            .collect();
        let anti: Vec<f64> = (0..trials)
            .map(|i| european_mc_antithetic(&spec, sims / 2, 10_000 + i * 7_919))
            .collect();
        let var_plain = spread(&plain);
        let var_anti = spread(&anti);
        assert!(
            var_anti < 0.6 * var_plain,
            "antithetic variance {var_anti} vs plain {var_plain}"
        );
    }

    #[test]
    fn high_bounds_low_on_average() {
        let spec = OptionSpec::paper_default();
        let trees = 400;
        let mut high_sum = 0.0;
        let mut low_sum = 0.0;
        for i in 0..trees {
            let (h, l) = bg_tree_estimate(&spec, 4, 3, 1000 + i);
            high_sum += h;
            low_sum += l;
        }
        let high = high_sum / trees as f64;
        let low = low_sum / trees as f64;
        assert!(high >= low, "mean high {high} must dominate mean low {low}");
        // The bracket should be tight-ish and positive for an ATM call.
        assert!(low > 0.0);
        assert!(high < spec.spot);
    }

    #[test]
    fn american_bracket_contains_european_floor() {
        // An American option is worth at least the European one; the
        // high estimate (biased up) must exceed the European closed form
        // minus MC noise.
        let spec = OptionSpec::paper_default();
        let euro = black_scholes_price(&OptionSpec {
            style: OptionStyle::European,
            ..spec
        });
        let trees = 600;
        let mut high_sum = 0.0;
        for i in 0..trees {
            let (h, _) = bg_tree_estimate(&spec, 4, 3, 5000 + i);
            high_sum += h;
        }
        let high = high_sum / trees as f64;
        assert!(
            high > euro * 0.95,
            "high estimate {high} vs european {euro}"
        );
    }

    #[test]
    fn deep_in_the_money_put_exercises_early() {
        // For a deep ITM American put, immediate exercise dominates; both
        // estimators must return ≈ intrinsic value or more.
        let spec = OptionSpec {
            spot: 50.0,
            strike: 100.0,
            rate: 0.10,
            dividend: 0.0,
            volatility: 0.10,
            expiry: 1.0,
            option_type: OptionType::Put,
            style: OptionStyle::American,
        };
        let (h, l) = bg_tree_estimate(&spec, 4, 3, 1);
        assert!(h >= 49.9, "high {h}");
        assert!(l >= 49.9, "low {l}");
    }

    #[test]
    fn tree_estimate_deterministic() {
        let spec = OptionSpec::paper_default();
        assert_eq!(
            bg_tree_estimate(&spec, 3, 3, 99),
            bg_tree_estimate(&spec, 3, 3, 99)
        );
    }

    #[test]
    #[should_panic(expected = "at least 2 branches")]
    fn branching_one_rejected() {
        bg_tree_estimate(&OptionSpec::paper_default(), 1, 2, 0);
    }
}
