//! Micro-benchmarks of the durability subsystem: WAL append throughput per
//! sync policy, snapshot writing, and recovery replay.

use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use acc_durability::{SyncPolicy, Wal, WalOptions};
use acc_tuplespace::{Space, Template, Tuple};

fn bench_dir(label: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "acc-durability-bench-{}-{label}-{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn task_tuple(id: i64) -> Tuple {
    Tuple::build("acc.task")
        .field("job", "bench")
        .field("task_id", id)
        .field("payload", vec![0u8; 64])
        .done()
}

/// Raw WAL append rate under each sync policy. The `EveryN` group-commit
/// number is the headline (the acceptance bar is >= 100k ops/s); `Always`
/// shows the full price of per-record fsync.
fn bench_wal_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("durability/wal_append");
    let policies: [(&str, SyncPolicy); 4] = [
        ("never", SyncPolicy::Never),
        ("every_64", SyncPolicy::EveryN(64)),
        ("interval_5ms", SyncPolicy::IntervalMs(5)),
        ("always", SyncPolicy::Always),
    ];
    for (name, policy) in policies {
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &policy| {
            let dir = bench_dir(name);
            let wal = Wal::open(
                &dir,
                WalOptions {
                    sync: policy,
                    ..WalOptions::default()
                },
            )
            .unwrap();
            let payload = [0u8; 128];
            b.iter(|| wal.append(&payload).unwrap());
            drop(wal);
            let _ = std::fs::remove_dir_all(&dir);
        });
    }
    group.finish();
}

/// End-to-end journaled write+take against the WAL-backed space — the
/// durable counterpart of `space/write_take/64`.
fn bench_durable_write_take(c: &mut Criterion) {
    c.bench_function("durability/durable_write_take", |b| {
        let dir = bench_dir("write-take");
        let space = Space::durable("bench", &dir, WalOptions::default()).unwrap();
        let template = Template::of_type("acc.task");
        let mut i = 0i64;
        b.iter(|| {
            space.write(task_tuple(i)).unwrap();
            i += 1;
            space.take_if_exists(&template).unwrap().unwrap()
        });
        drop(space);
        let _ = std::fs::remove_dir_all(&dir);
    });
}

/// Checkpointing a 1000-entry space (scan + encode + atomic write +
/// segment compaction).
fn bench_snapshot_write(c: &mut Criterion) {
    c.bench_function("durability/snapshot_1000_entries", |b| {
        let dir = bench_dir("snapshot");
        let space = Space::durable("bench", &dir, WalOptions::default()).unwrap();
        for i in 0..1000 {
            space.write(task_tuple(i)).unwrap();
        }
        b.iter(|| space.checkpoint().unwrap());
        drop(space);
        let _ = std::fs::remove_dir_all(&dir);
    });
}

/// Cold-start recovery of a space whose WAL holds 10k ops (7.5k writes,
/// 2.5k takes, no snapshot — 5k entries survive).
fn bench_recovery_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("durability/recovery");
    group.bench_function("replay_10k_ops", |b| {
        let dir = bench_dir("replay");
        {
            let space = Space::durable("bench", &dir, WalOptions::default()).unwrap();
            let template = Template::of_type("acc.task");
            for i in 0..7500 {
                space.write(task_tuple(i)).unwrap();
                if i % 3 == 0 {
                    space.take_if_exists(&template).unwrap().unwrap();
                }
            }
            // Drop without checkpointing: recovery replays the raw log.
        }
        b.iter(|| Space::recover(&dir).unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_wal_append,
    bench_durable_write_take,
    bench_snapshot_write,
    bench_recovery_replay
);
criterion_main!(benches);
