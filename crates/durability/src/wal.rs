//! The segmented append-only write-ahead log.
//!
//! # On-disk layout
//!
//! A log directory holds numbered segment files `wal-<start-lsn>.log`;
//! the 20-digit zero-padded start LSN makes lexicographic order equal
//! LSN order. A segment is a run of frames:
//!
//! ```text
//! [u32 len (LE)] [u32 crc32(payload) (LE)] [payload bytes]
//! ```
//!
//! LSNs are implicit — the i-th frame of a segment starting at LSN `s`
//! has LSN `s + i` — so frames carry no per-record header beyond length
//! and checksum. Appends are a single `write(2)` of the whole frame
//! (never buffered in userspace), so after a process kill the file
//! contains every acknowledged append up to at most one torn frame at
//! the tail; `fsync` cadence against *machine* failure is the
//! [`SyncPolicy`]'s business.
//!
//! # Recovery
//!
//! [`Wal::open`] scans the newest segment and physically truncates it at
//! the first frame whose length or CRC fails — torn-tail tolerance.
//! [`Wal::replay`] walks every segment in LSN order and stops at the
//! first bad frame, returning exactly the committed prefix.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use acc_telemetry::Timed;

use crate::crc::crc32;
use crate::series::series;

/// Upper bound on one record's payload; a larger length prefix is treated
/// as corruption (it would otherwise make recovery attempt a huge read).
pub(crate) const MAX_RECORD: usize = 64 << 20;

const FRAME_HEADER: usize = 8;

/// When appends are made durable against machine failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every append. Safest, slowest.
    Always,
    /// `fsync` once every N appends (group commit).
    EveryN(u32),
    /// `fsync` when at least this many milliseconds passed since the last
    /// sync, checked on each append.
    IntervalMs(u64),
    /// Never `fsync`; the OS flushes on its own schedule. A process kill
    /// still loses nothing (appends are direct writes), only a machine
    /// failure can.
    Never,
}

/// Tunables for a [`Wal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalOptions {
    /// Durability cadence for appends.
    pub sync: SyncPolicy,
    /// Rotate to a fresh segment once the current one exceeds this size.
    pub segment_bytes: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            sync: SyncPolicy::EveryN(64),
            segment_bytes: 8 << 20,
        }
    }
}

/// One recovered record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The record's log sequence number.
    pub lsn: u64,
    /// The opaque payload as appended.
    pub payload: Vec<u8>,
}

/// Everything [`Wal::replay`] found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalReplay {
    /// Committed records in LSN order.
    pub records: Vec<WalRecord>,
    /// Bytes discarded at the tail (torn frame or trailing corruption).
    pub torn_bytes: u64,
}

struct Inner {
    file: File,
    segment_len: u64,
    next_lsn: u64,
    unsynced: u32,
    last_sync: Instant,
}

/// A segmented append-only log of opaque records. All methods are
/// thread-safe; appends are serialized by an internal mutex, which is what
/// makes the WAL order a real total order for the layers above.
pub struct Wal {
    dir: PathBuf,
    opts: WalOptions,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal").field("dir", &self.dir).finish()
    }
}

fn segment_path(dir: &Path, start_lsn: u64) -> PathBuf {
    dir.join(format!("wal-{start_lsn:020}.log"))
}

/// Existing segments as `(start_lsn, path)`, in LSN order.
fn segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(start) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".log"))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        out.push((start, entry.path()));
    }
    out.sort_unstable();
    Ok(out)
}

/// Scans one segment's bytes: returns `(record_count, valid_len)` and, when
/// `collect` is set, the payloads of every valid frame. Stops at the first
/// frame that is incomplete or fails its checksum.
fn scan_segment(bytes: &[u8], collect: bool) -> (u64, u64, Vec<Vec<u8>>) {
    let mut offset = 0usize;
    let mut count = 0u64;
    let mut payloads = Vec::new();
    while let Some(header) = bytes.get(offset..offset + FRAME_HEADER) {
        let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
        if len > MAX_RECORD {
            break;
        }
        let Some(payload) = bytes.get(offset + FRAME_HEADER..offset + FRAME_HEADER + len) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        if collect {
            payloads.push(payload.to_vec());
        }
        offset += FRAME_HEADER + len;
        count += 1;
    }
    (count, offset as u64, payloads)
}

impl Wal {
    /// Opens (or creates) the log in `dir`. If the newest segment ends in a
    /// torn frame, it is truncated to its last complete frame — the log is
    /// always append-ready afterwards.
    pub fn open(dir: impl Into<PathBuf>, opts: WalOptions) -> io::Result<Wal> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let segs = segments(&dir)?;
        let (start, path) = match segs.last() {
            Some((start, path)) => (*start, path.clone()),
            None => (0, segment_path(&dir, 0)),
        };
        let mut file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let (count, valid_len, _) = scan_segment(&bytes, false);
        if valid_len < bytes.len() as u64 {
            series().torn_bytes.add(bytes.len() as u64 - valid_len);
            file.set_len(valid_len)?;
            file.sync_data()?;
            // Reopen in append mode so the cursor lands at the new end on
            // every platform (append repositions per write, but be exact).
            file = OpenOptions::new().read(true).append(true).open(&path)?;
        }
        Ok(Wal {
            dir,
            opts,
            inner: Mutex::new(Inner {
                file,
                segment_len: valid_len,
                next_lsn: start + count,
                unsynced: 0,
                last_sync: Instant::now(),
            }),
        })
    }

    /// Appends one record and applies the sync policy. Returns the record's
    /// LSN. The frame is written with a single `write(2)`, so a concurrent
    /// crash can tear at most this one frame.
    pub fn append(&self, payload: &[u8]) -> io::Result<u64> {
        assert!(payload.len() <= MAX_RECORD, "record exceeds MAX_RECORD");
        let timed = Timed::start();
        let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);

        let mut inner = self.inner.lock().expect("wal lock");
        if inner.segment_len >= self.opts.segment_bytes && inner.segment_len > 0 {
            self.rotate(&mut inner)?;
        }
        inner.file.write_all(&frame)?;
        let lsn = inner.next_lsn;
        inner.next_lsn += 1;
        inner.segment_len += frame.len() as u64;
        inner.unsynced += 1;
        let due = match self.opts.sync {
            SyncPolicy::Always => true,
            SyncPolicy::EveryN(n) => inner.unsynced >= n.max(1),
            SyncPolicy::IntervalMs(ms) => inner.last_sync.elapsed() >= Duration::from_millis(ms),
            SyncPolicy::Never => false,
        };
        if due {
            Self::fsync(&mut inner)?;
        }
        let s = series();
        s.appends.inc();
        s.append_bytes.add(frame.len() as u64);
        timed.observe(&s.append_us);
        Ok(lsn)
    }

    /// Forces everything appended so far to stable storage.
    pub fn sync(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().expect("wal lock");
        Self::fsync(&mut inner)
    }

    fn fsync(inner: &mut Inner) -> io::Result<()> {
        let timed = Timed::start();
        inner.file.sync_data()?;
        inner.unsynced = 0;
        inner.last_sync = Instant::now();
        let s = series();
        s.fsyncs.inc();
        timed.observe(&s.fsync_us);
        Ok(())
    }

    /// Seals the current segment and starts a new one at the current LSN.
    fn rotate(&self, inner: &mut Inner) -> io::Result<()> {
        inner.file.sync_data()?;
        let path = segment_path(&self.dir, inner.next_lsn);
        inner.file = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(path)?;
        inner.segment_len = 0;
        series().rotations.inc();
        Ok(())
    }

    /// The LSN the next append will get.
    pub fn next_lsn(&self) -> u64 {
        self.inner.lock().expect("wal lock").next_lsn
    }

    /// Deletes every segment whose records all have `lsn < upto`, i.e. are
    /// covered by a snapshot taken at cut LSN `upto`. The active segment is
    /// never deleted. Returns how many segments were removed.
    pub fn compact(&self, upto: u64) -> io::Result<usize> {
        // Hold the append lock so rotation cannot race the directory scan.
        let _inner = self.inner.lock().expect("wal lock");
        let segs = segments(&self.dir)?;
        let mut removed = 0;
        for window in segs.windows(2) {
            let (_, path) = &window[0];
            let (next_start, _) = window[1];
            // All records of window[0] have lsn < next_start.
            if next_start <= upto {
                fs::remove_file(path)?;
                removed += 1;
            }
        }
        if removed > 0 {
            series().compacted_segments.add(removed as u64);
        }
        Ok(removed)
    }

    /// Reads every committed record in `dir` in LSN order, stopping at the
    /// first incomplete or corrupt frame (torn-tail tolerance). Does not
    /// modify any file — safe on a copied directory.
    pub fn replay(dir: impl AsRef<Path>) -> io::Result<WalReplay> {
        let dir = dir.as_ref();
        let mut records = Vec::new();
        let mut torn_bytes = 0u64;
        let segs = if dir.is_dir() {
            segments(dir)?
        } else {
            Vec::new()
        };
        let mut expected_lsn: Option<u64> = None;
        for (start, path) in segs {
            if let Some(expected) = expected_lsn {
                if start != expected {
                    // A gap or overlap in the segment chain: everything from
                    // here on is not a contiguous committed prefix.
                    break;
                }
            }
            let bytes = fs::read(&path)?;
            let (count, valid_len, payloads) = scan_segment(&bytes, true);
            for (i, payload) in payloads.into_iter().enumerate() {
                records.push(WalRecord {
                    lsn: start + i as u64,
                    payload,
                });
            }
            if valid_len < bytes.len() as u64 {
                torn_bytes = bytes.len() as u64 - valid_len;
                break; // Only the prefix up to the tear is committed.
            }
            expected_lsn = Some(start + count);
        }
        series().replay_records.add(records.len() as u64);
        Ok(WalReplay {
            records,
            torn_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn test_dir(label: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("acc-wal-{}-{label}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_replay_roundtrip() {
        let dir = test_dir("roundtrip");
        let wal = Wal::open(&dir, WalOptions::default()).unwrap();
        for i in 0..50u64 {
            let lsn = wal.append(&i.to_le_bytes()).unwrap();
            assert_eq!(lsn, i);
        }
        let replay = Wal::replay(&dir).unwrap();
        assert_eq!(replay.records.len(), 50);
        assert_eq!(replay.torn_bytes, 0);
        for (i, rec) in replay.records.iter().enumerate() {
            assert_eq!(rec.lsn, i as u64);
            assert_eq!(rec.payload, (i as u64).to_le_bytes());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_continues_lsns() {
        let dir = test_dir("reopen");
        {
            let wal = Wal::open(&dir, WalOptions::default()).unwrap();
            wal.append(b"one").unwrap();
            wal.append(b"two").unwrap();
        }
        let wal = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(wal.next_lsn(), 2);
        assert_eq!(wal.append(b"three").unwrap(), 2);
        assert_eq!(Wal::replay(&dir).unwrap().records.len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let dir = test_dir("torn");
        {
            let wal = Wal::open(&dir, WalOptions::default()).unwrap();
            for i in 0..10u64 {
                wal.append(&i.to_le_bytes()).unwrap();
            }
        }
        // Simulate a crash mid-append: append garbage half-frame bytes.
        let path = segment_path(&dir, 0);
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        file.write_all(&[0x55; 7]).unwrap();
        drop(file);
        let replay = Wal::replay(&dir).unwrap();
        assert_eq!(replay.records.len(), 10);
        assert_eq!(replay.torn_bytes, 7);
        // Reopening truncates the tear and continues cleanly.
        let wal = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(wal.next_lsn(), 10);
        wal.append(b"fresh").unwrap();
        assert_eq!(Wal::replay(&dir).unwrap().records.len(), 11);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_byte_truncation_yields_a_committed_prefix() {
        let dir = test_dir("prefix");
        {
            let wal = Wal::open(&dir, WalOptions::default()).unwrap();
            for i in 0..8u64 {
                wal.append(&[i as u8; 5]).unwrap();
            }
        }
        let path = segment_path(&dir, 0);
        let full = fs::read(&path).unwrap();
        for cut in 0..=full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let replay = Wal::replay(&dir).unwrap();
            // Whatever the cut, we get a clean prefix of whole records and
            // no invented data.
            assert_eq!(cut as u64, {
                let consumed: u64 = replay
                    .records
                    .iter()
                    .map(|r| FRAME_HEADER as u64 + r.payload.len() as u64)
                    .sum();
                consumed + replay.torn_bytes
            });
            for (i, rec) in replay.records.iter().enumerate() {
                assert_eq!(rec.payload, [i as u8; 5]);
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_middle_frame_stops_replay_there() {
        let dir = test_dir("corrupt");
        {
            let wal = Wal::open(&dir, WalOptions::default()).unwrap();
            for _ in 0..5 {
                wal.append(b"payload").unwrap();
            }
        }
        let path = segment_path(&dir, 0);
        let mut bytes = fs::read(&path).unwrap();
        let frame = FRAME_HEADER + b"payload".len();
        bytes[2 * frame + FRAME_HEADER] ^= 0xFF; // flip a byte in record 2
        fs::write(&path, &bytes).unwrap();
        let replay = Wal::replay(&dir).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert!(replay.torn_bytes > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_and_cross_segment_replay() {
        let dir = test_dir("rotate");
        let opts = WalOptions {
            segment_bytes: 64,
            ..WalOptions::default()
        };
        let wal = Wal::open(&dir, opts).unwrap();
        for i in 0..40u64 {
            wal.append(&i.to_le_bytes()).unwrap();
        }
        assert!(segments(&dir).unwrap().len() > 1, "should have rotated");
        let replay = Wal::replay(&dir).unwrap();
        assert_eq!(replay.records.len(), 40);
        for (i, rec) in replay.records.iter().enumerate() {
            assert_eq!(rec.lsn, i as u64);
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_drops_only_covered_segments() {
        let dir = test_dir("compact");
        let opts = WalOptions {
            segment_bytes: 64,
            ..WalOptions::default()
        };
        let wal = Wal::open(&dir, opts).unwrap();
        for i in 0..40u64 {
            wal.append(&i.to_le_bytes()).unwrap();
        }
        let before = segments(&dir).unwrap();
        assert!(before.len() > 2);
        // A cut in the middle of the chain keeps the segment holding it.
        let cut = before[1].0; // every record of segment 0 is < cut
        assert_eq!(wal.compact(cut).unwrap(), 1);
        let replay = Wal::replay(&dir).unwrap();
        assert_eq!(replay.records.first().unwrap().lsn, cut);
        assert_eq!(replay.records.last().unwrap().lsn, 39);
        // Compacting past the end removes all but the active segment.
        wal.compact(u64::MAX).unwrap();
        assert_eq!(segments(&dir).unwrap().len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sync_policies_all_preserve_appends_on_reopen() {
        for (label, sync) in [
            ("always", SyncPolicy::Always),
            ("every", SyncPolicy::EveryN(8)),
            ("interval", SyncPolicy::IntervalMs(1_000)),
            ("never", SyncPolicy::Never),
        ] {
            let dir = test_dir(label);
            {
                let wal = Wal::open(
                    &dir,
                    WalOptions {
                        sync,
                        ..WalOptions::default()
                    },
                )
                .unwrap();
                for i in 0..20u64 {
                    wal.append(&i.to_le_bytes()).unwrap();
                }
            }
            // A process exit (not machine crash) loses nothing under any
            // policy: appends hit the file directly.
            assert_eq!(Wal::replay(&dir).unwrap().records.len(), 20, "{label}");
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn empty_or_missing_dir_replays_empty() {
        let dir = test_dir("missing");
        let replay = Wal::replay(&dir).unwrap();
        assert!(replay.records.is_empty());
        let wal = Wal::open(&dir, WalOptions::default()).unwrap();
        assert_eq!(wal.next_lsn(), 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
