//! Minimal 3-vector algebra for the ray tracer.

use std::ops::{Add, Div, Mul, Neg, Sub};

/// A 3-component vector (points, directions, RGB colors).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

impl Vec3 {
    /// Constructs a vector.
    pub const fn new(x: f64, y: f64, z: f64) -> Vec3 {
        Vec3 { x, y, z }
    }

    /// The zero vector.
    pub const ZERO: Vec3 = Vec3::new(0.0, 0.0, 0.0);
    /// All-ones vector (white).
    pub const ONE: Vec3 = Vec3::new(1.0, 1.0, 1.0);

    /// Dot product.
    pub fn dot(self, rhs: Vec3) -> f64 {
        self.x * rhs.x + self.y * rhs.y + self.z * rhs.z
    }

    /// Cross product.
    pub fn cross(self, rhs: Vec3) -> Vec3 {
        Vec3::new(
            self.y * rhs.z - self.z * rhs.y,
            self.z * rhs.x - self.x * rhs.z,
            self.x * rhs.y - self.y * rhs.x,
        )
    }

    /// Euclidean length.
    pub fn length(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Unit vector in this direction (zero stays zero).
    pub fn normalized(self) -> Vec3 {
        let len = self.length();
        if len == 0.0 {
            Vec3::ZERO
        } else {
            self / len
        }
    }

    /// Reflects `self` (incoming direction) about unit normal `n`.
    pub fn reflect(self, n: Vec3) -> Vec3 {
        self - n * (2.0 * self.dot(n))
    }

    /// Component-wise product (color modulation).
    pub fn hadamard(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x * rhs.x, self.y * rhs.y, self.z * rhs.z)
    }

    /// Clamps each component to `[0, 1]`.
    pub fn clamp01(self) -> Vec3 {
        Vec3::new(
            self.x.clamp(0.0, 1.0),
            self.y.clamp(0.0, 1.0),
            self.z.clamp(0.0, 1.0),
        )
    }

    /// Converts a `[0,1]` color to 8-bit RGB.
    pub fn to_rgb8(self) -> [u8; 3] {
        let c = self.clamp01();
        [
            (c.x * 255.0 + 0.5) as u8,
            (c.y * 255.0 + 0.5) as u8,
            (c.z * 255.0 + 0.5) as u8,
        ]
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, rhs: Vec3) -> Vec3 {
        Vec3::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, rhs: f64) -> Vec3 {
        Vec3::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a.dot(b), 32.0);
    }

    #[test]
    fn cross_is_orthogonal() {
        let a = Vec3::new(1.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 1.0, 0.0);
        assert_eq!(a.cross(b), Vec3::new(0.0, 0.0, 1.0));
        let c = Vec3::new(1.3, -2.0, 0.7).cross(Vec3::new(0.2, 4.0, -1.0));
        assert!(c.dot(Vec3::new(1.3, -2.0, 0.7)).abs() < 1e-12);
    }

    #[test]
    fn normalize() {
        let v = Vec3::new(3.0, 0.0, 4.0);
        let n = v.normalized();
        assert!((n.length() - 1.0).abs() < 1e-12);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn reflection_preserves_length_and_flips() {
        let incoming = Vec3::new(1.0, -1.0, 0.0).normalized();
        let normal = Vec3::new(0.0, 1.0, 0.0);
        let reflected = incoming.reflect(normal);
        assert!((reflected.length() - 1.0).abs() < 1e-12);
        assert!((reflected.y - (-incoming.y)).abs() < 1e-12);
        assert!((reflected.x - incoming.x).abs() < 1e-12);
    }

    #[test]
    fn rgb8_conversion_rounds_and_clamps() {
        assert_eq!(Vec3::new(0.0, 0.5, 1.0).to_rgb8(), [0, 128, 255]);
        assert_eq!(Vec3::new(-1.0, 2.0, 0.999).to_rgb8(), [0, 255, 255]);
    }
}
