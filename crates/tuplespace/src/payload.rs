//! Binary payload codec.
//!
//! JavaSpaces requires entries crossing the space to be serializable; the
//! Rust analogue is the [`Payload`] trait, a small hand-rolled binary codec
//! over [`bytes`]. Application task bodies implement `Payload` and travel
//! through the space as `Value::Bytes` fields, so the space itself stays
//! application-agnostic — the separation of concerns §3 of the paper credits
//! to JavaSpaces.
//!
//! All integers are little-endian. Strings and byte blobs are length-prefixed
//! with a `u32`.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Errors raised while decoding a payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PayloadError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// A length prefix or tag had an impossible value.
    Corrupt(&'static str),
}

impl fmt::Display for PayloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PayloadError::Truncated => write!(f, "payload truncated"),
            PayloadError::Corrupt(what) => write!(f, "payload corrupt: {what}"),
        }
    }
}

impl std::error::Error for PayloadError {}

/// Types that can be serialized into a space entry and back.
pub trait Payload: Sized {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut WireWriter);
    /// Decodes a value from the front of `r`.
    fn decode(r: &mut WireReader) -> Result<Self, PayloadError>;

    /// Convenience: encode to a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        self.encode(&mut w);
        w.finish().to_vec()
    }

    /// Convenience: decode from a byte slice, requiring full consumption.
    fn from_bytes(bytes: &[u8]) -> Result<Self, PayloadError> {
        let mut r = WireReader::new(Bytes::copy_from_slice(bytes));
        let v = Self::decode(&mut r)?;
        if r.remaining() != 0 {
            return Err(PayloadError::Corrupt("trailing bytes"));
        }
        Ok(v)
    }
}

/// Append-only encoder.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes and returns the encoded bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Appends a `u8`.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Appends a `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    /// Appends a `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Appends an `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }

    /// Appends an `f64`.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Appends a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.put_u8(v as u8);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_u32(v.len() as u32);
        self.buf.put_slice(v.as_bytes());
    }

    /// Appends a length-prefixed byte blob.
    pub fn put_blob(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.put_slice(v);
    }

    /// Appends a length-prefixed `f64` slice.
    pub fn put_f64_slice(&mut self, v: &[f64]) {
        self.put_u32(v.len() as u32);
        for x in v {
            self.put_f64(*x);
        }
    }

    /// Appends a length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, v: &[u32]) {
        self.put_u32(v.len() as u32);
        for x in v {
            self.put_u32(*x);
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Consuming decoder over a byte buffer.
#[derive(Debug)]
pub struct WireReader {
    buf: Bytes,
}

impl WireReader {
    /// Wraps a buffer for decoding.
    pub fn new(buf: Bytes) -> Self {
        Self { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    fn need(&self, n: usize) -> Result<(), PayloadError> {
        if self.buf.remaining() < n {
            Err(PayloadError::Truncated)
        } else {
            Ok(())
        }
    }

    /// Reads a `u8`.
    pub fn get_u8(&mut self) -> Result<u8, PayloadError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    /// Reads a `u32`.
    pub fn get_u32(&mut self) -> Result<u32, PayloadError> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    /// Reads a `u64`.
    pub fn get_u64(&mut self) -> Result<u64, PayloadError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Reads an `i64`.
    pub fn get_i64(&mut self) -> Result<i64, PayloadError> {
        self.need(8)?;
        Ok(self.buf.get_i64_le())
    }

    /// Reads an `f64`.
    pub fn get_f64(&mut self) -> Result<f64, PayloadError> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    /// Reads a bool; only 0 and 1 are legal encodings.
    pub fn get_bool(&mut self) -> Result<bool, PayloadError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(PayloadError::Corrupt("bool tag")),
        }
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String, PayloadError> {
        let len = self.get_u32()? as usize;
        self.need(len)?;
        let raw = self.buf.split_to(len);
        String::from_utf8(raw.to_vec()).map_err(|_| PayloadError::Corrupt("utf8"))
    }

    /// Reads a length-prefixed byte blob.
    pub fn get_blob(&mut self) -> Result<Vec<u8>, PayloadError> {
        let len = self.get_u32()? as usize;
        self.need(len)?;
        Ok(self.buf.split_to(len).to_vec())
    }

    /// Reads a length-prefixed `f64` vector.
    pub fn get_f64_vec(&mut self) -> Result<Vec<f64>, PayloadError> {
        let len = self.get_u32()? as usize;
        self.need(len.checked_mul(8).ok_or(PayloadError::Corrupt("length"))?)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.buf.get_f64_le());
        }
        Ok(out)
    }

    /// Reads a length-prefixed `u32` vector.
    pub fn get_u32_vec(&mut self) -> Result<Vec<u32>, PayloadError> {
        let len = self.get_u32()? as usize;
        self.need(len.checked_mul(4).ok_or(PayloadError::Corrupt("length"))?)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.buf.get_u32_le());
        }
        Ok(out)
    }
}

impl Payload for u32 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u32(*self);
    }
    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        r.get_u32()
    }
}

impl Payload for u64 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_u64(*self);
    }
    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        r.get_u64()
    }
}

impl Payload for i64 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_i64(*self);
    }
    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        r.get_i64()
    }
}

impl Payload for f64 {
    fn encode(&self, w: &mut WireWriter) {
        w.put_f64(*self);
    }
    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        r.get_f64()
    }
}

impl Payload for String {
    fn encode(&self, w: &mut WireWriter) {
        w.put_str(self);
    }
    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        r.get_str()
    }
}

impl Payload for Vec<f64> {
    fn encode(&self, w: &mut WireWriter) {
        w.put_f64_slice(self);
    }
    fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
        r.get_f64_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Sample {
        id: u32,
        label: String,
        xs: Vec<f64>,
        flag: bool,
    }

    impl Payload for Sample {
        fn encode(&self, w: &mut WireWriter) {
            w.put_u32(self.id);
            w.put_str(&self.label);
            w.put_f64_slice(&self.xs);
            w.put_bool(self.flag);
        }
        fn decode(r: &mut WireReader) -> Result<Self, PayloadError> {
            Ok(Sample {
                id: r.get_u32()?,
                label: r.get_str()?,
                xs: r.get_f64_vec()?,
                flag: r.get_bool()?,
            })
        }
    }

    #[test]
    fn struct_roundtrip() {
        let s = Sample {
            id: 9,
            label: "strip-3".into(),
            xs: vec![1.0, -2.5, f64::MAX],
            flag: true,
        };
        let bytes = s.to_bytes();
        assert_eq!(Sample::from_bytes(&bytes).unwrap(), s);
    }

    #[test]
    fn truncated_fails() {
        let s = Sample {
            id: 1,
            label: "x".into(),
            xs: vec![],
            flag: false,
        };
        let bytes = s.to_bytes();
        for cut in 0..bytes.len() {
            assert!(Sample::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = 7u32.to_bytes();
        bytes.push(0);
        assert_eq!(
            u32::from_bytes(&bytes),
            Err(PayloadError::Corrupt("trailing bytes"))
        );
    }

    #[test]
    fn bad_bool_tag_rejected() {
        let mut r = WireReader::new(Bytes::from_static(&[2]));
        assert_eq!(r.get_bool(), Err(PayloadError::Corrupt("bool tag")));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = WireWriter::new();
        w.put_u32(2);
        w.put_u8(0xff);
        w.put_u8(0xfe);
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.get_str(), Err(PayloadError::Corrupt("utf8")));
    }

    #[test]
    fn primitive_impls_roundtrip() {
        assert_eq!(u32::from_bytes(&5u32.to_bytes()).unwrap(), 5);
        assert_eq!(u64::from_bytes(&7u64.to_bytes()).unwrap(), 7);
        assert_eq!(i64::from_bytes(&(-3i64).to_bytes()).unwrap(), -3);
        assert_eq!(f64::from_bytes(&1.25f64.to_bytes()).unwrap(), 1.25);
        assert_eq!(
            String::from_bytes(&"hello".to_string().to_bytes()).unwrap(),
            "hello"
        );
        let xs = vec![0.5, 1.5];
        assert_eq!(Vec::<f64>::from_bytes(&xs.to_bytes()).unwrap(), xs);
    }

    #[test]
    fn u32_slice_roundtrip() {
        let mut w = WireWriter::new();
        w.put_u32_slice(&[1, 2, 3]);
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.get_u32_vec().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn huge_length_prefix_is_truncation_not_panic() {
        let mut w = WireWriter::new();
        w.put_u32(u32::MAX);
        let mut r = WireReader::new(w.finish());
        assert_eq!(r.get_blob(), Err(PayloadError::Truncated));
        let mut r2 = WireReader::new({
            let mut w = WireWriter::new();
            w.put_u32(u32::MAX);
            w.finish()
        });
        assert!(r2.get_f64_vec().is_err());
    }
}
