//! # acc-spacegrid
//!
//! A partitioned, multi-server tuple space. The paper's single JavaSpace
//! is the framework's throughput ceiling and availability single point of
//! failure; [`PartitionedSpace`] shards past it by spreading tuples over
//! N independent [`SpaceServer`](acc_tuplespace::SpaceServer)s while
//! still presenting the one [`TupleStore`] interface masters and workers
//! already speak — dispatch, prefetch, heartbeats, and durability all
//! work unchanged through the grid.
//!
//! * **Routing** ([`router`]): every write lands on the deterministic
//!   FNV-1a owner of the tuple's key fields (or of the whole tuple in
//!   spread mode). Templates that pin all key fields route straight to
//!   the owner; anything else scatter-gathers.
//! * **Scatter-gather**: non-blocking lookups sweep the healthy shards;
//!   blocking `read`/`take` fan out one helper thread per shard running
//!   short blocking slices, with first-wins cancellation — a losing
//!   `take` restores its tuple to the shard it came from (the
//!   client-side mirror of the server's `restore_unacked`), retrying
//!   and falling back to another shard rather than ever dropping it,
//!   and a gatherer that times out while a win is in flight recovers
//!   and restores that straggler win the same way. Keyed routed lookups
//!   that miss on the owner fall back to a scatter before reporting
//!   `None`, so a tuple another client rerouted off its owner is still
//!   found.
//! * **Batching**: `write_all` splits the batch by owner and dispatches
//!   the per-shard groups in parallel, each riding the protocol-v2
//!   pipelined frames (and their `BATCH_FRAME_BUDGET` chunking) of its
//!   own connection; `take_up_to` fans quota-bounded batch takes out the
//!   same way.
//! * **Degradation**: a shard whose connection keeps failing (after
//!   [`RemoteSpace`]'s own reconnect-and-retry) is marked unhealthy:
//!   writes deterministically probe onward to the next healthy shard,
//!   scatters skip it, and a background prober readmits it when it
//!   answers again. One dead shard degrades the grid instead of killing
//!   the cluster.
//!
//! Telemetry: `grid.shards`, `grid.unhealthy_shards`, per-shard op
//! latency (`grid.shard<i>.op_us`), scatter fan-out width
//! (`grid.scatter.fanout`), rerouted writes (`grid.rerouted_writes`),
//! first-wins restores (`grid.restored_tuples`) and restore failures
//! (`grid.lost_tuples` — every increment is also logged to stderr).

#![warn(missing_docs)]

mod router;

use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use acc_tuplespace::{
    EntryId, Lease, RemoteSpace, SpaceError, SpaceResult, Template, Tuple, TupleStore,
};

pub use router::{route_template, route_tuple, tuple_hash, GridConfig};

/// Grid-wide telemetry series (see the crate docs for the name list).
struct GridSeries {
    shards: Arc<acc_telemetry::Gauge>,
    unhealthy: Arc<acc_telemetry::Gauge>,
    rerouted_writes: Arc<acc_telemetry::Counter>,
    restored_tuples: Arc<acc_telemetry::Counter>,
    lost_tuples: Arc<acc_telemetry::Counter>,
    scatter_fanout: Arc<acc_telemetry::Histogram>,
}

fn series() -> &'static GridSeries {
    static SERIES: std::sync::OnceLock<GridSeries> = std::sync::OnceLock::new();
    SERIES.get_or_init(|| {
        let r = acc_telemetry::registry();
        GridSeries {
            shards: r.gauge("grid.shards"),
            unhealthy: r.gauge("grid.unhealthy_shards"),
            rerouted_writes: r.counter("grid.rerouted_writes"),
            restored_tuples: r.counter("grid.restored_tuples"),
            lost_tuples: r.counter("grid.lost_tuples"),
            scatter_fanout: r.histogram("grid.scatter.fanout"),
        }
    })
}

/// Per-shard op-latency histograms are keyed by shard index, not by
/// grid instance: every client process talking to shard *i* reports into
/// `grid.shard<i>.op_us`. The registry wants `&'static str` names, so
/// each index's formatted name is leaked exactly once and memoized —
/// reconnecting clients (one per added worker) reuse the same `&'static
/// str` instead of leaking a fresh copy per connect.
fn shard_op_histogram(index: usize) -> Arc<acc_telemetry::Histogram> {
    static NAMES: std::sync::Mutex<Vec<&'static str>> = std::sync::Mutex::new(Vec::new());
    let name = {
        let mut names = NAMES.lock().expect("shard-name memo poisoned");
        while names.len() <= index {
            let i = names.len();
            names.push(Box::leak(format!("grid.shard{i}.op_us").into_boxed_str()));
        }
        names[index]
    };
    acc_telemetry::registry().histogram(name)
}

/// One shard of the grid: a [`RemoteSpace`] connection plus its health
/// mark. The health mark is per *client* (each grid instance judges its
/// own connections), which is exactly what routing needs — a shard this
/// client cannot reach must be routed around by this client, whatever
/// other clients see.
struct Shard {
    index: usize,
    addr: SocketAddr,
    remote: RemoteSpace,
    healthy: AtomicBool,
    op_us: Arc<acc_telemetry::Histogram>,
}

impl Shard {
    fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }

    fn mark_unhealthy(&self) {
        if self.healthy.swap(false, Ordering::SeqCst) {
            series().unhealthy.add(1);
        }
    }

    fn mark_healthy(&self) {
        if !self.healthy.swap(true, Ordering::SeqCst) {
            series().unhealthy.add(-1);
        }
    }

    /// Runs one operation against the shard, recording its latency and
    /// downgrading the shard on a connection-level failure.
    /// [`RemoteSpace`] has already absorbed one reconnect-and-resend by
    /// the time `Transport` surfaces here, so a failure at this layer
    /// means the server is genuinely unreachable (or desynced, for
    /// `Protocol`) — strike it out rather than hammering it.
    fn call<T>(&self, op: impl FnOnce(&RemoteSpace) -> SpaceResult<T>) -> SpaceResult<T> {
        let start = Instant::now();
        let result = op(&self.remote);
        self.op_us.observe(start.elapsed().as_micros() as u64);
        match &result {
            Err(SpaceError::Transport(_)) | Err(SpaceError::Protocol(_)) => self.mark_unhealthy(),
            _ => {}
        }
        result
    }
}

/// Health and identity of one shard, as reported by
/// [`PartitionedSpace::status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStatus {
    /// Position in the shard list (the routing space).
    pub index: usize,
    /// The shard server's address.
    pub addr: SocketAddr,
    /// Whether this client currently considers the shard reachable.
    pub healthy: bool,
}

/// Outcome events a scatter helper thread reports to its caller. `Win`
/// carries the shard the tuple came from so that a gatherer abandoning
/// the wait (timeout) can restore a straggler win to its origin instead
/// of dropping it on the channel floor.
enum HelperEvent {
    /// This helper won the race; the tuple is the operation's result.
    Win(Tuple, Arc<Shard>),
    /// The remote space reports closed — the grid must propagate it.
    Closed,
    /// The helper gave up (shard error or deadline) without a match.
    Exit,
}

/// Everything needed to put a taken-but-unwanted tuple back into the
/// grid: the shard list for fallback targets and the shared reroute
/// latch to trip when a restore lands off its origin shard.
struct RestoreCtx {
    shards: Vec<Arc<Shard>>,
    rerouted: Arc<AtomicBool>,
}

/// Puts back a tuple that a `take` removed but the operation will not
/// deliver (a helper lost the first-wins race, or the gatherer timed
/// out while a win was in flight). The original lease is unknowable
/// client-side — `take` returns the tuple alone and the server entry is
/// gone — so the restore re-writes with the default forever lease,
/// erring toward never losing a tuple at the cost of a bounded-lease
/// entry outliving its deadline.
///
/// The origin shard is retried first (routing invariants stay intact);
/// if it stays unreachable, any healthy shard beats a lost tuple — but
/// landing off-origin may move the tuple off its owner, so that path
/// counts as a reroute and trips the keyed-routing latch. Only when
/// every attempt fails is the tuple abandoned, and loudly: the
/// `grid.lost_tuples` counter and stderr both record it.
fn restore_tuple(ctx: &RestoreCtx, origin: &Arc<Shard>, tuple: Tuple) {
    // One extra origin attempt on top of RemoteSpace's own
    // reconnect-and-resend, in case the first hits a transient fault.
    for _ in 0..2 {
        match origin.call(|r| r.write(tuple.clone())) {
            Ok(_) => {
                series().restored_tuples.inc();
                return;
            }
            // The space itself is gone; there is nothing to preserve
            // the tuple *for*.
            Err(SpaceError::Closed) => return,
            Err(_) => {}
        }
    }
    for shard in &ctx.shards {
        if shard.index == origin.index || !shard.is_healthy() {
            continue;
        }
        match shard.call(|r| r.write(tuple.clone())) {
            Ok(_) => {
                series().restored_tuples.inc();
                series().rerouted_writes.inc();
                ctx.rerouted.store(true, Ordering::SeqCst);
                return;
            }
            Err(SpaceError::Closed) => return,
            Err(_) => {}
        }
    }
    series().lost_tuples.inc();
    eprintln!(
        "acc: grid failed to restore a taken '{}' tuple (shard {} and every fallback unreachable); tuple dropped",
        tuple.type_name(),
        origin.index
    );
}

/// A partitioned tuple space: the full [`TupleStore`] contract over N
/// [`RemoteSpace`] shards. See the crate docs for the routing,
/// scatter-gather and degradation semantics; see [`GridConfig`] for the
/// tunables.
///
/// A `PartitionedSpace` owns one connection per shard and, like
/// [`RemoteSpace`], serves one caller per connection at a time: give
/// each worker its own instance (via [`PartitionedSpace::reconnect`])
/// rather than sharing one across threads.
pub struct PartitionedSpace {
    shards: Vec<Arc<Shard>>,
    config: GridConfig,
    closed: AtomicBool,
    /// This client's local knowledge that some write (or restore) went
    /// off its owner shard, making keyed template routing pointless —
    /// once set, routed lookups skip the owner attempt and go straight
    /// to scatter. This is a latency optimisation, not the correctness
    /// mechanism: reroutes by *other* clients are invisible here, so
    /// routed lookups that miss always fall back to a scatter before
    /// returning `None` (see [`PartitionedSpace::route`]). Shared
    /// (`Arc`) with scatter helpers so restore fallbacks can trip it.
    ever_rerouted: Arc<AtomicBool>,
    /// Rotates the starting shard of scatter sweeps so repeated
    /// non-blocking lookups don't always favour shard 0.
    sweep_cursor: AtomicUsize,
    prober: Option<(Arc<AtomicBool>, std::thread::JoinHandle<()>)>,
}

impl std::fmt::Debug for PartitionedSpace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionedSpace")
            .field("shards", &self.shards.len())
            .field("healthy", &self.healthy().len())
            .finish()
    }
}

impl PartitionedSpace {
    /// Connects to every shard with the default [`GridConfig`]. All
    /// shards must be reachable at connect time; degradation covers
    /// shards that fail *afterwards*.
    pub fn connect(addrs: &[SocketAddr]) -> std::io::Result<PartitionedSpace> {
        PartitionedSpace::connect_with(addrs, GridConfig::default())
    }

    /// Connects to every shard with explicit tunables.
    pub fn connect_with(
        addrs: &[SocketAddr],
        config: GridConfig,
    ) -> std::io::Result<PartitionedSpace> {
        if addrs.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "a space grid needs at least one shard address",
            ));
        }
        let shards: Vec<Arc<Shard>> = addrs
            .iter()
            .enumerate()
            .map(|(index, &addr)| {
                Ok(Arc::new(Shard {
                    index,
                    addr,
                    remote: RemoteSpace::connect(addr)?,
                    healthy: AtomicBool::new(true),
                    op_us: shard_op_histogram(index),
                }))
            })
            .collect::<std::io::Result<_>>()?;
        series().shards.set(shards.len() as i64);
        let prober = PartitionedSpace::spawn_prober(&shards, config.reprobe_interval);
        Ok(PartitionedSpace {
            shards,
            config,
            closed: AtomicBool::new(false),
            ever_rerouted: Arc::new(AtomicBool::new(false)),
            sweep_cursor: AtomicUsize::new(0),
            prober: Some(prober),
        })
    }

    /// Background prober: an unhealthy shard rejoins the grid as soon as
    /// it answers a probe (`count` of an any-type template — cheap, and
    /// it exercises the same reconnect path real traffic would).
    fn spawn_prober(
        shards: &[Arc<Shard>],
        interval: Duration,
    ) -> (Arc<AtomicBool>, std::thread::JoinHandle<()>) {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let shards: Vec<Arc<Shard>> = shards.to_vec();
        let thread = std::thread::Builder::new()
            .name("acc-grid-prober".into())
            .spawn(move || {
                let probe = Template::any_type().done();
                while !stop2.load(Ordering::SeqCst) {
                    for shard in &shards {
                        if !shard.is_healthy() && shard.remote.count(&probe).is_ok() {
                            shard.mark_healthy();
                        }
                    }
                    // Sleep in slices so drop/shutdown stays prompt.
                    let deadline = Instant::now() + interval;
                    while Instant::now() < deadline && !stop2.load(Ordering::SeqCst) {
                        std::thread::sleep(Duration::from_millis(10).min(interval));
                    }
                }
            })
            .expect("spawn grid prober thread");
        (stop, thread)
    }

    /// The shard addresses, in routing order.
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.shards.iter().map(|s| s.addr).collect()
    }

    /// Total number of shards (healthy or not).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of currently healthy shards.
    pub fn healthy_count(&self) -> usize {
        self.healthy().len()
    }

    /// Per-shard identity and health, in routing order.
    pub fn status(&self) -> Vec<ShardStatus> {
        self.shards
            .iter()
            .map(|s| ShardStatus {
                index: s.index,
                addr: s.addr,
                healthy: s.is_healthy(),
            })
            .collect()
    }

    /// Per-shard scatter-gather fan-out attribution: cumulative op count
    /// and total latency per shard, from the process-wide `op_us`
    /// histograms. Cumulative since process start — callers attributing a
    /// window (a job run) snapshot before and diff with
    /// [`fanout_since`](PartitionedSpace::fanout_since).
    pub fn fanout_profile(&self) -> Vec<acc_telemetry::profile::ShardPhase> {
        self.shards
            .iter()
            .map(|s| {
                let snap = s.op_us.snapshot();
                acc_telemetry::profile::ShardPhase {
                    index: s.index,
                    addr: s.addr.to_string(),
                    ops: snap.count,
                    total_us: snap.sum,
                }
            })
            .collect()
    }

    /// The fan-out accrued since a [`fanout_profile`](PartitionedSpace::fanout_profile)
    /// snapshot: per-shard op/latency deltas (missing shards count from
    /// zero).
    pub fn fanout_since(
        &self,
        before: &[acc_telemetry::profile::ShardPhase],
    ) -> Vec<acc_telemetry::profile::ShardPhase> {
        self.fanout_profile()
            .into_iter()
            .map(|mut now| {
                if let Some(prev) = before.iter().find(|p| p.index == now.index) {
                    now.ops = now.ops.saturating_sub(prev.ops);
                    now.total_us = now.total_us.saturating_sub(prev.total_us);
                }
                now
            })
            .collect()
    }

    /// The grid's status as a JSON object (for `/cluster.json` and
    /// dashboards): shard list with health, plus the reroute counters.
    pub fn render_json(&self) -> String {
        let shards: Vec<String> = self
            .status()
            .iter()
            .map(|s| {
                format!(
                    r#"{{"index":{},"addr":"{}","healthy":{}}}"#,
                    s.index, s.addr, s.healthy
                )
            })
            .collect();
        format!(
            r#"{{"total":{},"healthy":{},"rerouted_writes":{},"restored_tuples":{},"shards":[{}]}}"#,
            self.shard_count(),
            self.healthy_count(),
            series().rerouted_writes.get(),
            series().restored_tuples.get(),
            shards.join(",")
        )
    }

    /// A fresh grid client over the same shards and tunables — each
    /// worker gets its own connections, as with [`RemoteSpace`]. The
    /// clone shares this client's reroute latch, so reroutes either one
    /// observes retire the other's routed fast path too (reroutes by
    /// unrelated clients remain invisible — routed misses fall back to
    /// scatter to cover those).
    pub fn reconnect(&self) -> std::io::Result<PartitionedSpace> {
        let mut grid = PartitionedSpace::connect_with(&self.addrs(), self.config.clone())?;
        grid.ever_rerouted = self.ever_rerouted.clone();
        Ok(grid)
    }

    fn ensure_open(&self) -> SpaceResult<()> {
        if self.closed.load(Ordering::SeqCst) {
            return Err(SpaceError::Closed);
        }
        Ok(())
    }

    fn healthy(&self) -> Vec<Arc<Shard>> {
        self.shards
            .iter()
            .filter(|s| s.is_healthy())
            .cloned()
            .collect()
    }

    fn no_healthy() -> SpaceError {
        SpaceError::Transport("space grid: no healthy shards".into())
    }

    /// The shard a write of `tuple` goes to *now*: the deterministic
    /// owner, or — when the owner is down — the next healthy shard in
    /// probe order. Rerouting trips [`Self::ever_rerouted`], which
    /// retires keyed template routing for this client (the tuple is no
    /// longer guaranteed to be on its owner).
    fn write_target(&self, tuple: &Tuple) -> SpaceResult<Arc<Shard>> {
        let n = self.shards.len();
        let owner = route_tuple(tuple, &self.config.key_fields, n);
        for probe in 0..n {
            let shard = &self.shards[(owner + probe) % n];
            if shard.is_healthy() {
                if probe > 0 {
                    series().rerouted_writes.inc();
                    self.ever_rerouted.store(true, Ordering::SeqCst);
                }
                return Ok(shard.clone());
            }
        }
        Err(PartitionedSpace::no_healthy())
    }

    /// The owner shard a lookup should *try first*: keyed mode, fully
    /// bound template, no reroute known to this client, owner healthy.
    /// Everything else scatters immediately.
    ///
    /// A routed *hit* is always valid (reroutes move tuples, they never
    /// duplicate them), but a routed *miss* is not authoritative: some
    /// other client may have rerouted the tuple off its owner, and that
    /// is invisible to this client's `ever_rerouted` latch. Every caller
    /// must therefore treat a routed `Ok(None)` / empty result as "not
    /// on the owner" and fall back to a scatter before reporting a miss
    /// — and ops whose result aggregates over matches (`count`,
    /// `take_all`) must not use routing at all.
    fn route(&self, template: &Template) -> Option<Arc<Shard>> {
        if self.ever_rerouted.load(Ordering::SeqCst) {
            return None;
        }
        let index = route_template(template, &self.config.key_fields, self.shards.len())?;
        let shard = &self.shards[index];
        shard.is_healthy().then(|| shard.clone())
    }

    /// One non-blocking sweep over the healthy shards, starting from the
    /// rotating cursor. Shard errors degrade (the shard is struck out and
    /// the sweep moves on); `Closed` propagates.
    fn sweep_one(&self, template: &Template, destructive: bool) -> SpaceResult<Option<Tuple>> {
        let healthy = self.healthy();
        if healthy.is_empty() {
            return Err(PartitionedSpace::no_healthy());
        }
        series().scatter_fanout.observe(healthy.len() as u64);
        let start = self.sweep_cursor.fetch_add(1, Ordering::Relaxed);
        for k in 0..healthy.len() {
            let shard = &healthy[(start + k) % healthy.len()];
            let got = shard.call(|r| {
                if destructive {
                    r.take_if_exists(template)
                } else {
                    r.read_if_exists(template)
                }
            });
            match got {
                Ok(Some(tuple)) => return Ok(Some(tuple)),
                Ok(None) => {}
                Err(SpaceError::Closed) => {
                    self.closed.store(true, Ordering::SeqCst);
                    return Err(SpaceError::Closed);
                }
                Err(SpaceError::Transport(_)) | Err(SpaceError::Protocol(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }

    /// Blocking scatter lookup: a helper thread per healthy shard runs
    /// short blocking slices ([`GridConfig::take_slice`]) against its
    /// shard, checking the shared first-wins flag between slices.
    ///
    /// Lock/thread ordering, and why this cannot deadlock or lose
    /// tuples:
    /// 1. the main thread holds **no** shard connection while waiting —
    ///    it blocks on the event channel only;
    /// 2. each helper touches exactly one shard connection (its own), so
    ///    helpers never wait on each other;
    /// 3. the first helper to flip the `done` flag owns the result; any
    ///    later match is a *loser* and is restored to the shard it was
    ///    taken from (client-side `restore_unacked`, see
    ///    [`restore_tuple`]) before the helper exits;
    /// 4. the gatherer abandons the wait (deadline) by *swapping* `done`
    ///    rather than storing it: a `true` result means some helper's
    ///    own swap beat ours — it won and its `Win` is in flight on the
    ///    channel — so the gatherer drains the channel for that
    ///    straggler win and restores its tuple before returning `None`.
    ///    Without the swap handshake the `Win` would be dropped with
    ///    `rx` and the already-taken tuple lost;
    /// 5. helpers are detached, not joined: the winner returns
    ///    immediately, and stragglers die within one slice of `done`
    ///    flipping (dropping their channel senders, which bounds the
    ///    straggler drain in step 4). A straggler's connection mutex may
    ///    be held for up to one slice after the call returns — the next
    ///    operation on that shard simply queues behind it.
    fn scatter_blocking(
        &self,
        template: &Template,
        deadline: Option<Instant>,
        destructive: bool,
    ) -> SpaceResult<Option<Tuple>> {
        let ctx = Arc::new(RestoreCtx {
            shards: self.shards.clone(),
            rerouted: self.ever_rerouted.clone(),
        });
        loop {
            self.ensure_open()?;
            // Fast path: anything already matching anywhere? Runs before
            // any deadline check so a zero timeout (the `*_if_exists`
            // contract) still gets one full sweep.
            if let Some(tuple) = self.sweep_one(template, destructive)? {
                return Ok(Some(tuple));
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Ok(None);
                }
            }
            let healthy = self.healthy();
            if healthy.is_empty() {
                return Err(PartitionedSpace::no_healthy());
            }
            let job = Arc::new(HelperJob {
                template: template.clone(),
                deadline,
                slice: self.config.take_slice,
                destructive,
                done: AtomicBool::new(false),
                restore: ctx.clone(),
            });
            let (tx, rx) = mpsc::channel::<HelperEvent>();
            let mut live = 0usize;
            for shard in healthy {
                let tx = tx.clone();
                let job = job.clone();
                std::thread::Builder::new()
                    .name(format!("acc-grid-scatter-{}", shard.index))
                    .spawn(move || helper_loop(shard, job, tx))
                    .expect("spawn grid scatter helper");
                live += 1;
            }
            drop(tx);
            // (decided result, whether we consumed a Win event).
            let (outcome, consumed_win) = loop {
                let event = match deadline {
                    None => rx.recv().map_err(|_| mpsc::RecvTimeoutError::Disconnected),
                    Some(d) => rx.recv_timeout(d.saturating_duration_since(Instant::now())),
                };
                match event {
                    Ok(HelperEvent::Win(tuple, _)) => break (Some(Ok(Some(tuple))), true),
                    Ok(HelperEvent::Closed) => {
                        self.closed.store(true, Ordering::SeqCst);
                        break (Some(Err(SpaceError::Closed)), false);
                    }
                    Ok(HelperEvent::Exit) => {
                        live -= 1;
                        if live == 0 {
                            // Every helper died (shard faults) or timed
                            // out; decide at the top of the outer loop.
                            break (None, false);
                        }
                    }
                    Err(_) => break (Some(Ok(None)), false), // deadline
                }
            };
            // Cancel the stragglers — with a `swap`, not a `store`, to
            // close the race the timeout path opens (ordering rule 4 in
            // the doc comment): `true` here without a consumed `Win`
            // means a helper's swap beat ours, it believes it won, and
            // its `Win` is in (or on its way into) the channel. Dropping
            // `rx` now would strand that already-taken tuple outside the
            // space, so wait for the event and put the tuple back. The
            // wait is bounded: every helper exits within one slice of
            // `done` flipping and drops its sender.
            if job.done.swap(true, Ordering::SeqCst) && !consumed_win {
                while let Ok(event) = rx.recv() {
                    if let HelperEvent::Win(tuple, origin) = event {
                        if destructive {
                            restore_tuple(&ctx, &origin, tuple);
                        }
                        break;
                    }
                }
            }
            match outcome {
                Some(result) => return result,
                None => continue,
            }
        }
    }

    /// One parallel, non-blocking batch sweep: every healthy shard is
    /// asked for a quota-bounded slice of `max` (quotas sum to `max`, so
    /// the merge can never overfetch and nothing needs restoring). Runs
    /// the last shard's request on the calling thread; a single healthy
    /// shard therefore costs no thread spawn at all.
    fn sweep_take_up_to(&self, template: &Template, max: usize) -> SpaceResult<Vec<Tuple>> {
        let healthy = self.healthy();
        if healthy.is_empty() {
            return Err(PartitionedSpace::no_healthy());
        }
        series().scatter_fanout.observe(healthy.len() as u64);
        let n = healthy.len();
        let base = max / n;
        let extra = max % n;
        let quota = |slot: usize| base + usize::from(slot < extra);
        let start = self.sweep_cursor.fetch_add(1, Ordering::Relaxed) % n;
        // Rotate which shards get the remainder quotas, for fairness.
        let order: Vec<Arc<Shard>> = (0..n).map(|k| healthy[(start + k) % n].clone()).collect();
        let mut handles = Vec::new();
        for (slot, shard) in order.iter().enumerate().skip(1) {
            if quota(slot) == 0 {
                continue;
            }
            let shard = shard.clone();
            let template = template.clone();
            let want = quota(slot);
            handles.push(std::thread::spawn(move || {
                shard.call(|r| r.take_up_to(&template, want, Some(Duration::ZERO)))
            }));
        }
        let mut results =
            vec![order[0].call(|r| r.take_up_to(template, quota(0), Some(Duration::ZERO)))];
        for handle in handles {
            results.push(handle.join().expect("grid sweep helper panicked"));
        }
        let mut out = Vec::new();
        for result in results {
            match result {
                Ok(batch) => out.extend(batch),
                Err(SpaceError::Closed) => {
                    self.closed.store(true, Ordering::SeqCst);
                    return Err(SpaceError::Closed);
                }
                // Struck shards degrade the sweep, not the caller.
                Err(SpaceError::Transport(_)) | Err(SpaceError::Protocol(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }
}

/// Shared state of one scatter-gather round: the lookup parameters, the
/// first-wins flag, and the restore context losers use to put their
/// tuples back. One per [`PartitionedSpace::scatter_blocking`] round,
/// shared by the gatherer and every helper.
struct HelperJob {
    template: Template,
    deadline: Option<Instant>,
    slice: Duration,
    destructive: bool,
    done: AtomicBool,
    restore: Arc<RestoreCtx>,
}

/// Body of one scatter helper thread; see
/// [`PartitionedSpace::scatter_blocking`] for the ordering rules.
fn helper_loop(shard: Arc<Shard>, job: Arc<HelperJob>, tx: mpsc::Sender<HelperEvent>) {
    while !job.done.load(Ordering::SeqCst) {
        let wait = match job.deadline {
            None => job.slice,
            Some(d) => {
                let remaining = d.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    break;
                }
                job.slice.min(remaining)
            }
        };
        let got = shard.call(|r| {
            if job.destructive {
                r.take(&job.template, Some(wait))
            } else {
                r.read(&job.template, Some(wait))
            }
        });
        match got {
            Ok(Some(tuple)) => {
                if !job.done.swap(true, Ordering::SeqCst) {
                    let _ = tx.send(HelperEvent::Win(tuple, shard));
                } else if job.destructive {
                    // Lost the race after removing a tuple: put it back
                    // so no other caller misses it.
                    restore_tuple(&job.restore, &shard, tuple);
                    let _ = tx.send(HelperEvent::Exit);
                }
                return;
            }
            Ok(None) => continue,
            Err(SpaceError::Closed) => {
                let _ = tx.send(HelperEvent::Closed);
                return;
            }
            // Transport/protocol: `call` already struck the shard out.
            Err(_) => break,
        }
    }
    let _ = tx.send(HelperEvent::Exit);
}

impl TupleStore for PartitionedSpace {
    fn write_leased(&self, tuple: Tuple, lease: Lease) -> SpaceResult<EntryId> {
        self.ensure_open()?;
        // Each failed attempt strikes a shard out, so the probe sequence
        // advances; `shards + 1` attempts guarantees termination.
        let mut last_err = PartitionedSpace::no_healthy();
        for _ in 0..=self.shards.len() {
            let target = self.write_target(&tuple)?;
            match target.call(|r| r.write_leased(tuple.clone(), lease)) {
                Err(e @ SpaceError::Transport(_)) | Err(e @ SpaceError::Protocol(_)) => {
                    last_err = e;
                }
                other => return other,
            }
        }
        Err(last_err)
    }

    fn read(&self, template: &Template, timeout: Option<Duration>) -> SpaceResult<Option<Tuple>> {
        self.ensure_open()?;
        let deadline = timeout.map(|t| Instant::now() + t);
        // Single-shard fast path: one direct blocking call (the server
        // wakes it on a matching write) instead of sliced scatter polls.
        if self.shards.len() == 1 && self.shards[0].is_healthy() {
            match self.shards[0].call(|r| r.read(template, timeout)) {
                Err(SpaceError::Transport(_)) | Err(SpaceError::Protocol(_)) => {}
                other => return other,
            }
        }
        if let Some(shard) = self.route(template) {
            match shard.call(|r| r.read(template, timeout)) {
                Ok(Some(tuple)) => return Ok(Some(tuple)),
                // A routed miss is not authoritative — another client
                // may have rerouted the tuple off its owner — so fall
                // through to a scatter (whose opening sweep runs even
                // with the deadline spent) before reporting `None`.
                Ok(None) => {}
                Err(SpaceError::Transport(_)) | Err(SpaceError::Protocol(_)) => {}
                other => return other,
            }
        }
        self.scatter_blocking(template, deadline, false)
    }

    fn take(&self, template: &Template, timeout: Option<Duration>) -> SpaceResult<Option<Tuple>> {
        self.ensure_open()?;
        let deadline = timeout.map(|t| Instant::now() + t);
        // Single-shard fast path, as in `read`.
        if self.shards.len() == 1 && self.shards[0].is_healthy() {
            match self.shards[0].call(|r| r.take(template, timeout)) {
                Err(SpaceError::Transport(_)) | Err(SpaceError::Protocol(_)) => {}
                other => return other,
            }
        }
        if let Some(shard) = self.route(template) {
            match shard.call(|r| r.take(template, timeout)) {
                Ok(Some(tuple)) => return Ok(Some(tuple)),
                // Routed miss: fall back to scatter, as in `read`.
                Ok(None) => {}
                Err(SpaceError::Transport(_)) | Err(SpaceError::Protocol(_)) => {}
                other => return other,
            }
        }
        self.scatter_blocking(template, deadline, true)
    }

    /// Counts always sum over every healthy shard — no routed fast
    /// path. An owner-only count silently undercounts whenever any
    /// client ever rerouted a write (or restore) off that owner, and
    /// this client cannot know whether one did.
    fn count(&self, template: &Template) -> SpaceResult<usize> {
        self.ensure_open()?;
        let healthy = self.healthy();
        if healthy.is_empty() {
            return Err(PartitionedSpace::no_healthy());
        }
        let mut total = 0usize;
        for shard in healthy {
            match shard.call(|r| r.count(template)) {
                Ok(n) => total += n,
                Err(SpaceError::Closed) => {
                    self.closed.store(true, Ordering::SeqCst);
                    return Err(SpaceError::Closed);
                }
                // A shard dying mid-count degrades to a partial count,
                // consistent with scatter reads skipping dead shards.
                Err(SpaceError::Transport(_)) | Err(SpaceError::Protocol(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(total)
    }

    fn close(&self) {
        if self.closed.swap(true, Ordering::SeqCst) {
            return;
        }
        // Best-effort: tell every shard, reachable or not, bypassing the
        // health filter (an "unhealthy" shard may still be up).
        for shard in &self.shards {
            shard.remote.close();
        }
    }

    fn is_closed(&self) -> bool {
        if self.closed.load(Ordering::SeqCst) {
            return true;
        }
        self.healthy().iter().any(|s| s.remote.is_closed())
    }

    /// Drains every healthy shard in parallel — no routed fast path,
    /// for the same reason as [`PartitionedSpace::count`]: an
    /// owner-only drain would strand tuples another client rerouted
    /// off-owner.
    fn take_all(&self, template: &Template) -> SpaceResult<Vec<Tuple>> {
        self.ensure_open()?;
        let healthy = self.healthy();
        if healthy.is_empty() {
            return Err(PartitionedSpace::no_healthy());
        }
        series().scatter_fanout.observe(healthy.len() as u64);
        let mut handles = Vec::new();
        for shard in healthy.iter().skip(1) {
            let shard = shard.clone();
            let template = template.clone();
            handles.push(std::thread::spawn(move || {
                shard.call(|r| r.take_all(&template))
            }));
        }
        let mut results = vec![healthy[0].call(|r| r.take_all(template))];
        for handle in handles {
            results.push(handle.join().expect("grid take_all helper panicked"));
        }
        let mut out = Vec::new();
        for result in results {
            match result {
                Ok(batch) => out.extend(batch),
                Err(SpaceError::Closed) => {
                    self.closed.store(true, Ordering::SeqCst);
                    return Err(SpaceError::Closed);
                }
                Err(SpaceError::Transport(_)) | Err(SpaceError::Protocol(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// Splits the batch by owner and dispatches the per-shard groups in
    /// parallel — each group rides its own connection's pipelined
    /// protocol-v2 frames (and their frame-budget chunking). Ids come
    /// back in input order. A group whose shard dies mid-write is
    /// re-dispatched through the (now updated) probe order; as with
    /// [`RemoteSpace`], the retry makes batch writes at-least-once.
    fn write_all_leased(&self, tuples: Vec<Tuple>, lease: Lease) -> SpaceResult<Vec<EntryId>> {
        self.ensure_open()?;
        if tuples.is_empty() {
            return Ok(Vec::new());
        }
        // Single-shard fast path: there is no reroute target, so the
        // retry machinery below (which clones every tuple to be able to
        // regroup after a shard death) would be pure overhead. Move the
        // batch straight through.
        if self.shards.len() == 1 {
            let shard = &self.shards[0];
            if !shard.is_healthy() {
                return Err(PartitionedSpace::no_healthy());
            }
            return match shard.call(|r| r.write_all_leased(tuples, lease)) {
                Err(SpaceError::Closed) => {
                    self.closed.store(true, Ordering::SeqCst);
                    Err(SpaceError::Closed)
                }
                other => other,
            };
        }
        let mut ids: Vec<Option<EntryId>> = vec![None; tuples.len()];
        // (input position, tuple) pairs still to be written.
        let mut pending: Vec<(usize, Tuple)> = tuples.into_iter().enumerate().collect();
        let mut last_err = PartitionedSpace::no_healthy();
        for _ in 0..=self.shards.len() {
            if pending.is_empty() {
                break;
            }
            // Group by current write target (owner or reroute).
            type Group = (Arc<Shard>, Vec<(usize, Tuple)>);
            let mut groups: Vec<Group> = Vec::new();
            for (pos, tuple) in pending.drain(..) {
                let target = self.write_target(&tuple)?;
                match groups.iter_mut().find(|(s, _)| s.index == target.index) {
                    Some((_, group)) => group.push((pos, tuple)),
                    None => groups.push((target, vec![(pos, tuple)])),
                }
            }
            let last = groups.len() - 1;
            let mut handles = Vec::new();
            for (shard, group) in groups.drain(..last) {
                handles.push(std::thread::spawn(move || {
                    let batch: Vec<Tuple> = group.iter().map(|(_, t)| t.clone()).collect();
                    let result = shard.call(|r| r.write_all_leased(batch, lease));
                    (group, result)
                }));
            }
            // Last group runs inline: a single-shard grid spawns nothing.
            let (shard, group) = groups.pop().expect("at least one group");
            let batch: Vec<Tuple> = group.iter().map(|(_, t)| t.clone()).collect();
            let mut outcomes = vec![(group, shard.call(|r| r.write_all_leased(batch, lease)))];
            for handle in handles {
                outcomes.push(handle.join().expect("grid write helper panicked"));
            }
            for (group, result) in outcomes {
                match result {
                    Ok(batch_ids) => {
                        for ((pos, _), id) in group.iter().zip(batch_ids) {
                            ids[*pos] = Some(id);
                        }
                    }
                    Err(e @ SpaceError::Transport(_)) | Err(e @ SpaceError::Protocol(_)) => {
                        // The shard is struck out; re-queue for reroute.
                        last_err = e;
                        pending.extend(group);
                    }
                    Err(SpaceError::Closed) => {
                        self.closed.store(true, Ordering::SeqCst);
                        return Err(SpaceError::Closed);
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        if !pending.is_empty() {
            return Err(last_err);
        }
        Ok(ids
            .into_iter()
            .map(|id| id.expect("pending drained, every position written"))
            .collect())
    }

    /// Scatter batch take: a parallel quota sweep first; when it comes
    /// up dry and the caller is willing to wait, one blocking scatter
    /// take delivers the first match, then a final sweep drains whatever
    /// else arrived — mirroring the single-store contract (block for the
    /// first match, drain the rest without waiting).
    fn take_up_to(
        &self,
        template: &Template,
        max: usize,
        timeout: Option<Duration>,
    ) -> SpaceResult<Vec<Tuple>> {
        self.ensure_open()?;
        if max == 0 {
            return Ok(Vec::new());
        }
        let deadline = timeout.map(|t| Instant::now() + t);
        // Single-shard fast path: the one server already implements the
        // exact block-then-drain contract in one round trip (v2).
        if self.shards.len() == 1 && self.shards[0].is_healthy() {
            match self.shards[0].call(|r| r.take_up_to(template, max, timeout)) {
                Err(SpaceError::Transport(_)) | Err(SpaceError::Protocol(_)) => {}
                other => return other,
            }
        }
        if let Some(shard) = self.route(template) {
            match shard.call(|r| r.take_up_to(template, max, timeout)) {
                Ok(batch) if !batch.is_empty() => return Ok(batch),
                // Empty routed batch: not authoritative under reroutes
                // by other clients — fall through to the quota sweep.
                Ok(_) => {}
                Err(SpaceError::Transport(_)) | Err(SpaceError::Protocol(_)) => {}
                other => return other,
            }
        }
        let first_sweep = self.sweep_take_up_to(template, max)?;
        if !first_sweep.is_empty() {
            return Ok(first_sweep);
        }
        if timeout == Some(Duration::ZERO) {
            return Ok(first_sweep);
        }
        match self.scatter_blocking(template, deadline, true)? {
            None => Ok(Vec::new()),
            Some(first) => {
                let mut out = vec![first];
                if max > 1 {
                    out.extend(self.sweep_take_up_to(template, max - 1)?);
                }
                Ok(out)
            }
        }
    }
}

impl Drop for PartitionedSpace {
    fn drop(&mut self) {
        if let Some((stop, thread)) = self.prober.take() {
            stop.store(true, Ordering::SeqCst);
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_tuplespace::{Space, SpaceHandle, SpaceServer};

    struct Rig {
        spaces: Vec<SpaceHandle>,
        servers: Vec<SpaceServer>,
        grid: PartitionedSpace,
    }

    fn rig(shards: usize) -> Rig {
        rig_with(shards, GridConfig::default())
    }

    fn rig_with(shards: usize, config: GridConfig) -> Rig {
        let mut spaces = Vec::new();
        let mut servers = Vec::new();
        let mut addrs = Vec::new();
        for i in 0..shards {
            let space = Space::new(format!("shard-{i}"));
            let server = SpaceServer::spawn(space.clone(), "127.0.0.1:0").unwrap();
            addrs.push(server.addr());
            spaces.push(space);
            servers.push(server);
        }
        let grid = PartitionedSpace::connect_with(&addrs, config).unwrap();
        Rig {
            spaces,
            servers,
            grid,
        }
    }

    fn task(id: i64) -> Tuple {
        Tuple::build("acc.task")
            .field("job", "grid")
            .field("task_id", id)
            .done()
    }

    fn job_template() -> Template {
        Template::build("acc.task").eq("job", "grid").done()
    }

    #[test]
    fn writes_spread_and_scatter_take_finds_everything() {
        let r = rig(4);
        for i in 0..64 {
            r.grid.write(task(i)).unwrap();
        }
        let spread: Vec<usize> = r.spaces.iter().map(|s| s.len()).collect();
        assert_eq!(spread.iter().sum::<usize>(), 64);
        assert!(
            spread.iter().all(|&n| n > 0),
            "all shards should hold tuples: {spread:?}"
        );
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..64 {
            let t = r
                .grid
                .take(&job_template(), Some(Duration::from_secs(2)))
                .unwrap()
                .expect("tuple available");
            seen.insert(t.get_int("task_id").unwrap());
        }
        assert_eq!(seen.len(), 64);
        assert_eq!(r.grid.count(&job_template()).unwrap(), 0);
    }

    #[test]
    fn batch_write_and_batch_take_round_trip() {
        let r = rig(3);
        let ids = r.grid.write_all((0..100).map(task).collect()).unwrap();
        assert_eq!(ids.len(), 100);
        assert_eq!(r.grid.count(&job_template()).unwrap(), 100);
        let mut got = Vec::new();
        while got.len() < 100 {
            let batch = r
                .grid
                .take_up_to(&job_template(), 7, Some(Duration::from_secs(2)))
                .unwrap();
            assert!(!batch.is_empty());
            assert!(batch.len() <= 7);
            got.extend(batch);
        }
        assert_eq!(got.len(), 100);
    }

    #[test]
    fn keyed_routing_serves_point_lookups_from_the_owner() {
        let config = GridConfig {
            key_fields: vec!["job".into(), "task_id".into()],
            ..GridConfig::default()
        };
        let r = rig_with(4, config);
        for i in 0..32 {
            r.grid.write(task(i)).unwrap();
        }
        for i in 0..32i64 {
            let point = Template::build("acc.task")
                .eq("job", "grid")
                .eq("task_id", i)
                .done();
            let owner = route_tuple(&task(i), &["job".into(), "task_id".into()], 4);
            // The owner shard really holds it...
            assert_eq!(Space::count(&r.spaces[owner], &point), 1);
            // ...and the grid finds it (routed, not scattered).
            let got = r.grid.read_if_exists(&point).unwrap().unwrap();
            assert_eq!(got.get_int("task_id"), Some(i));
        }
    }

    #[test]
    fn blocking_take_wakes_on_late_write() {
        let r = rig(2);
        let grid = Arc::new(r.grid);
        let waiter = {
            let grid = grid.clone();
            std::thread::spawn(move || grid.take(&job_template(), Some(Duration::from_secs(5))))
        };
        std::thread::sleep(Duration::from_millis(60));
        // Write directly into a shard: the scatter helpers must see it.
        r.spaces[1].write(task(9)).unwrap();
        let got = waiter.join().unwrap().unwrap().expect("tuple delivered");
        assert_eq!(got.get_int("task_id"), Some(9));
    }

    #[test]
    fn blocking_take_times_out_empty() {
        let r = rig(2);
        let t0 = Instant::now();
        let got = r
            .grid
            .take(&job_template(), Some(Duration::from_millis(80)))
            .unwrap();
        assert!(got.is_none());
        assert!(t0.elapsed() >= Duration::from_millis(80));
    }

    #[test]
    fn dead_shard_degrades_writes_and_reads() {
        let mut r = rig(3);
        for i in 0..30 {
            r.grid.write(task(i)).unwrap();
        }
        // Kill shard 1 outright: server gone, connections reset.
        let dead = 1;
        let held = r.spaces[dead].len();
        drop(r.servers.remove(dead));
        // Writes keep landing (rerouted); the grid stays usable.
        for i in 30..60 {
            r.grid.write(task(i)).unwrap();
        }
        assert_eq!(r.grid.healthy_count(), 2);
        let status = r.grid.status();
        assert!(!status[dead].healthy);
        // Scatter reads cover the surviving shards.
        let visible = r.grid.count(&job_template()).unwrap();
        assert_eq!(visible, 60 - held);
        let drained = r.grid.take_all(&job_template()).unwrap();
        assert_eq!(drained.len(), visible);
    }

    #[test]
    fn recovered_shard_rejoins_via_the_prober() {
        let config = GridConfig {
            reprobe_interval: Duration::from_millis(20),
            ..GridConfig::default()
        };
        let mut r = rig_with(2, config);
        // Take shard 0 down and let the grid notice.
        let addr0 = r.servers[0].addr();
        let space0 = r.spaces[0].clone();
        drop(r.servers.remove(0));
        while r.grid.write(task(0)).is_ok() && r.grid.healthy_count() == 2 {}
        assert_eq!(r.grid.healthy_count(), 1);
        // Bring a server back on the same address.
        let _revived = SpaceServer::spawn(space0, &addr0.to_string()).unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        while r.grid.healthy_count() < 2 {
            assert!(Instant::now() < deadline, "prober never readmitted shard 0");
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn close_propagates_to_every_shard() {
        let r = rig(3);
        r.grid.write(task(1)).unwrap();
        r.grid.close();
        assert!(r.grid.is_closed());
        assert!(matches!(r.grid.write(task(2)), Err(SpaceError::Closed)));
        for space in &r.spaces {
            assert!(space.is_closed());
        }
    }

    #[test]
    fn all_shards_dead_is_a_transport_error() {
        let r = rig(2);
        drop(r.servers);
        let mut saw_transport = false;
        for i in 0..4 {
            if let Err(SpaceError::Transport(_)) = r.grid.write(task(i)) {
                saw_transport = true;
                break;
            }
        }
        assert!(
            saw_transport,
            "grid must surface Transport once all shards die"
        );
        assert!(matches!(
            r.grid
                .take(&job_template(), Some(Duration::from_millis(50))),
            Err(SpaceError::Transport(_))
        ));
    }

    /// A reroute performed by one client must not make keyed tuples
    /// invisible to *other* clients' routed lookups: the routed miss
    /// has to fall back to a scatter (and `count` must always sum over
    /// all shards).
    #[test]
    fn foreign_reroute_does_not_hide_keyed_tuples_from_other_clients() {
        let keys: Vec<String> = vec!["job".into(), "task_id".into()];
        let config = GridConfig {
            key_fields: keys.clone(),
            ..GridConfig::default()
        };
        let mut r = rig_with(2, config.clone());
        // A tuple owned by shard 0.
        let id = (0..)
            .find(|&i| route_tuple(&task(i), &keys, 2) == 0)
            .unwrap();
        // Kill the owner; writer client A strikes it out and reroutes
        // the write onto shard 1.
        let addr0 = r.servers[0].addr();
        let space0 = r.spaces[0].clone();
        drop(r.servers.remove(0));
        r.grid.write(task(id)).unwrap();
        assert_eq!(r.spaces[1].len(), 1, "write must land on the survivor");
        // The owner comes back (empty); a fresh client B connects with
        // no knowledge of A's reroute, so its template routing still
        // points at shard 0.
        let _revived = SpaceServer::spawn(space0, &addr0.to_string()).unwrap();
        let b = PartitionedSpace::connect_with(&r.grid.addrs(), config).unwrap();
        let point = Template::build("acc.task")
            .eq("job", "grid")
            .eq("task_id", id)
            .done();
        assert_eq!(b.count(&point).unwrap(), 1, "count must sum all shards");
        let read = b.read_if_exists(&point).unwrap();
        assert_eq!(
            read.and_then(|t| t.get_int("task_id")),
            Some(id),
            "routed miss must fall back to scatter"
        );
        let taken = b.take(&point, Some(Duration::from_millis(200))).unwrap();
        assert_eq!(taken.and_then(|t| t.get_int("task_id")), Some(id));
    }

    /// Conservation canary for the first-wins races: takes racing a
    /// writer under very short timeouts and slices must never lose a
    /// tuple — a gatherer that times out while a helper's win is in
    /// flight has to restore that straggler, and losing helpers have to
    /// restore theirs.
    #[test]
    fn short_timeout_takes_never_lose_tuples() {
        let config = GridConfig {
            take_slice: Duration::from_millis(2),
            ..GridConfig::default()
        };
        let r = rig_with(2, config);
        let total = 120i64;
        let writer_grid = r.grid.reconnect().unwrap();
        let writer = std::thread::spawn(move || {
            for i in 0..total {
                writer_grid.write(task(i)).unwrap();
                std::thread::sleep(Duration::from_micros(500));
            }
        });
        let mut got = 0i64;
        let stop = Instant::now() + Duration::from_secs(20);
        while got < total && Instant::now() < stop {
            if r.grid
                .take(&job_template(), Some(Duration::from_millis(3)))
                .unwrap()
                .is_some()
            {
                got += 1;
            }
        }
        writer.join().unwrap();
        // Whatever the takes missed must still be in the space. Loser
        // restores may land up to a slice after a take returns, so poll
        // instead of asserting a single snapshot.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let leftover = r.grid.count(&job_template()).unwrap() as i64;
            if got + leftover == total {
                break;
            }
            assert!(
                Instant::now() < deadline,
                "tuples lost: took {got}, {leftover} left of {total}"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    #[test]
    fn write_all_survives_a_shard_dying_between_batches() {
        let mut r = rig(3);
        r.grid.write_all((0..30).map(task).collect()).unwrap();
        drop(r.servers.remove(2));
        // The next batch hits the dead shard, strikes it out, reroutes,
        // and still reports an id per tuple.
        let ids = r.grid.write_all((30..60).map(task).collect()).unwrap();
        assert_eq!(ids.len(), 30);
        assert_eq!(r.grid.healthy_count(), 2);
        // Everything written after the death is reachable.
        let visible = r.grid.count(&job_template()).unwrap();
        assert!(visible >= 30, "rerouted writes must be readable: {visible}");
    }
}
