//! Space-grid benchmarks: aggregate dispatch-throughput scaling from
//! 1 → 4 shards, and the single-shard overhead of going through
//! `PartitionedSpace` at all.
//!
//! The headline scaling arm (`loaded_dispatch`) measures what sharding
//! buys *algorithmically*: dispatch cycles against a space that also
//! carries a standing backlog of other jobs' queued tuples. Jobs are
//! keyed by `Bytes` ids, and the space server's field index does not
//! index byte blobs (documented in `value_index_hash`), so every match
//! walks the scan path — whose cost is proportional to the entries
//! *this shard* stores. One shard scans the whole cluster's backlog on
//! every op; four shards each scan a quarter. That advantage is CPU-
//! architecture-independent: it holds even on a single-core runner,
//! where lock- or fsync-parallelism arms would be bounded by the
//! machine rather than by the design.
//!
//! The secondary scaling arm (`durable_dispatch`) runs durable shards
//! (`SyncPolicy::Always`): every tuple pays a WAL append + fsync at its
//! shard, and four shards commit four WALs concurrently. Its ratio is
//! bounded by how well the host's disk overlaps concurrent syncs
//! (≈ 2× on a typical single-device VM), so it is reported for the
//! record, not gated on.
//!
//! Both scaling arms route by key field, so each writer's `write_all`
//! batches land whole on the writer's owning shard (no per-batch
//! fan-out barrier), and the writer keys are pre-balanced over the
//! shard count.
//!
//! The overhead arm compares a 1-shard grid against a direct
//! `RemoteSpace` on the identical non-durable server, over the batch
//! dispatch + drain cycle the master/worker hot path uses.
//!
//! Custom harness (no `criterion_group!`): the scaling arm measures
//! aggregate multi-thread throughput, which needs explicit thread
//! control. Output stays `label: N ns/iter` compatible, and measured
//! runs export `BENCH_spacegrid.json` at the repo root for the
//! perf-trajectory record.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

use acc_durability::{SyncPolicy, WalOptions};
use acc_spacegrid::{route_tuple, GridConfig, PartitionedSpace};
use acc_tuplespace::{RemoteSpace, Space, SpaceHandle, SpaceServer, Template, Tuple, TupleStore};

const WRITERS: usize = 16;
const PAYLOAD: usize = 64;

fn task_tuple(writer: usize, id: i64) -> Tuple {
    Tuple::build("acc.task")
        .field("job", "bench")
        .field("writer", writer as i64)
        .field("task_id", id)
        .field("payload", vec![0u8; PAYLOAD])
        .done()
}

struct ShardRig {
    #[allow(dead_code)]
    spaces: Vec<SpaceHandle>,
    servers: Vec<SpaceServer>,
    dirs: Vec<std::path::PathBuf>,
}

impl ShardRig {
    fn durable(shards: usize) -> ShardRig {
        let mut spaces = Vec::new();
        let mut servers = Vec::new();
        let mut dirs = Vec::new();
        for i in 0..shards {
            let dir = std::env::temp_dir().join(format!(
                "acc-bench-grid-{}-{shards}-{i}",
                std::process::id()
            ));
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            let opts = WalOptions {
                sync: SyncPolicy::Always,
                ..WalOptions::default()
            };
            let space = Space::durable(format!("shard-{i}"), &dir, opts).unwrap();
            let server = SpaceServer::spawn(space.clone(), "127.0.0.1:0").unwrap();
            spaces.push(space);
            servers.push(server);
            dirs.push(dir);
        }
        ShardRig {
            spaces,
            servers,
            dirs,
        }
    }

    fn plain(shards: usize) -> ShardRig {
        let mut spaces = Vec::new();
        let mut servers = Vec::new();
        for i in 0..shards {
            let space = Space::new(format!("shard-{i}"));
            let server = SpaceServer::spawn(space.clone(), "127.0.0.1:0").unwrap();
            spaces.push(space);
            servers.push(server);
        }
        ShardRig {
            spaces,
            servers,
            dirs: Vec::new(),
        }
    }

    fn addrs(&self) -> Vec<SocketAddr> {
        self.servers.iter().map(|s| s.addr()).collect()
    }
}

impl Drop for ShardRig {
    fn drop(&mut self) {
        for dir in &self.dirs {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// Tuples per `write_all` call in the scaling arm — the same order of
/// magnitude as the master's dispatch batches.
const DISPATCH_CHUNK: usize = 64;

/// Grid config for the scaling arm: route whole batches by writer.
fn keyed_config() -> GridConfig {
    GridConfig {
        key_fields: vec!["writer".to_owned()],
        ..GridConfig::default()
    }
}

/// Picks `WRITERS` writer-key values whose keyed routes spread exactly
/// evenly over `shards`, so the scaling measurement isn't at the mercy
/// of hash luck on eight samples.
fn balanced_writer_keys(shards: usize) -> Vec<i64> {
    let key_fields = keyed_config().key_fields;
    let per_shard = WRITERS / shards;
    let mut counts = vec![0usize; shards];
    let mut keys = Vec::with_capacity(WRITERS);
    let mut candidate = 0i64;
    while keys.len() < WRITERS {
        let shard = route_tuple(&task_tuple(candidate as usize, 0), &key_fields, shards);
        if counts[shard] < per_shard {
            counts[shard] += 1;
            keys.push(candidate);
        }
        candidate += 1;
    }
    keys
}

/// Aggregate durable dispatch throughput over `shards` shards:
/// `WRITERS` threads, each with its own keyed grid client (its own
/// shard connections, like real workers), each dispatching `per_writer`
/// distinct tuples in `DISPATCH_CHUNK`-sized `write_all` batches that
/// route whole to the writer's owning shard. Returns mean ns per tuple
/// across the whole run; every tuple still costs its shard one WAL
/// append + fsync.
fn durable_dispatch_ns(shards: usize, per_writer: usize) -> f64 {
    let rig = ShardRig::durable(shards);
    let addrs = Arc::new(rig.addrs());
    let keys = balanced_writer_keys(shards);
    let barrier = Arc::new(std::sync::Barrier::new(WRITERS + 1));
    let mut threads = Vec::new();
    for &key in keys.iter().take(WRITERS) {
        let addrs = addrs.clone();
        let barrier = barrier.clone();
        threads.push(std::thread::spawn(move || {
            let grid = PartitionedSpace::connect_with(&addrs, keyed_config()).unwrap();
            barrier.wait();
            let mut next = 0usize;
            while next < per_writer {
                let end = (next + DISPATCH_CHUNK).min(per_writer);
                let chunk: Vec<Tuple> = (next..end)
                    .map(|i| task_tuple(key as usize, i as i64))
                    .collect();
                grid.write_all(chunk).unwrap();
                next = end;
            }
        }));
    }
    barrier.wait();
    let start = Instant::now();
    for t in threads {
        t.join().unwrap();
    }
    let elapsed = start.elapsed();
    elapsed.as_nanos() as f64 / (WRITERS * per_writer) as f64
}

/// A task tuple owned by a byte-keyed job (the loaded arm's shape).
fn job_task(job: &[u8], id: i64) -> Tuple {
    Tuple::build("acc.task")
        .field("job", job.to_vec())
        .field("task_id", id)
        .field("payload", vec![0u8; PAYLOAD])
        .done()
}

/// Grid config for the loaded arm: route whole jobs by their byte id.
fn bytes_keyed_config() -> GridConfig {
    GridConfig {
        key_fields: vec!["job".to_owned()],
        ..GridConfig::default()
    }
}

/// Byte job ids (`tag` + counter), route-balanced so exactly
/// `per_shard[s]` of them land on shard `s`.
fn balanced_job_keys(tag: u8, per_shard: &[usize]) -> Vec<Vec<u8>> {
    let key_fields = bytes_keyed_config().key_fields;
    let shards = per_shard.len();
    let want: usize = per_shard.iter().sum();
    let mut counts = vec![0usize; shards];
    let mut keys = Vec::with_capacity(want);
    let mut candidate: u32 = 0;
    while keys.len() < want {
        let mut id = vec![tag];
        id.extend_from_slice(&candidate.to_le_bytes());
        let shard = route_tuple(&job_task(&id, 0), &key_fields, shards);
        if counts[shard] < per_shard[shard] {
            counts[shard] += 1;
            keys.push(id);
        }
        candidate += 1;
    }
    keys
}

/// Aggregate dispatch throughput against a loaded space: the shards
/// also hold `backlog` other-job tuples (spread evenly — the same total
/// cluster content whatever the shard count), and byte job ids keep
/// every match on the server's scan path, so per-op cost tracks the
/// entries stored *on that shard*. Each of `WRITERS` threads cycles
/// `write_all` / `take_up_to` drains of its own job through its owning
/// shard. Returns mean ns per dispatched tuple.
fn loaded_dispatch_ns(shards: usize, per_writer: usize, backlog: usize) -> f64 {
    let rig = ShardRig::plain(shards);
    let addrs = Arc::new(rig.addrs());
    let writer_jobs = balanced_job_keys(b'W', &vec![WRITERS / shards; shards]);
    // One backlog job per shard, each holding an equal slice.
    let backlog_jobs = balanced_job_keys(b'B', &vec![1; shards]);
    let loader = PartitionedSpace::connect_with(&addrs, bytes_keyed_config()).unwrap();
    let per_shard_backlog = backlog / shards;
    for job in &backlog_jobs {
        let mut next = 0usize;
        while next < per_shard_backlog {
            let end = (next + 256).min(per_shard_backlog);
            let chunk: Vec<Tuple> = (next..end).map(|i| job_task(job, i as i64)).collect();
            loader.write_all(chunk).unwrap();
            next = end;
        }
    }
    drop(loader);

    let barrier = Arc::new(std::sync::Barrier::new(WRITERS + 1));
    let mut threads = Vec::new();
    for job in writer_jobs.into_iter().take(WRITERS) {
        let addrs = addrs.clone();
        let barrier = barrier.clone();
        threads.push(std::thread::spawn(move || {
            let grid = PartitionedSpace::connect_with(&addrs, bytes_keyed_config()).unwrap();
            let template = Template::build("acc.task").eq("job", job.clone()).done();
            barrier.wait();
            let mut next = 0usize;
            while next < per_writer {
                let end = (next + DISPATCH_CHUNK).min(per_writer);
                let chunk: Vec<Tuple> = (next..end).map(|i| job_task(&job, i as i64)).collect();
                let want = chunk.len();
                grid.write_all(chunk).unwrap();
                let mut drained = 0usize;
                while drained < want {
                    let got = grid
                        .take_up_to(&template, 32, Some(std::time::Duration::ZERO))
                        .unwrap();
                    assert!(!got.is_empty(), "own job under-drained");
                    drained += got.len();
                }
                next = end;
            }
        }));
    }
    barrier.wait();
    let start = Instant::now();
    for t in threads {
        t.join().unwrap();
    }
    let elapsed = start.elapsed();
    elapsed.as_nanos() as f64 / (WRITERS * per_writer) as f64
}

/// One dispatch+drain cycle: `write_all` a batch, then `take_up_to` it
/// back in prefetch-sized bites — the master/worker hot path.
fn dispatch_cycle(store: &dyn TupleStore, batch: usize) {
    let tuples: Vec<Tuple> = (0..batch as i64).map(|i| task_tuple(0, i)).collect();
    store.write_all(tuples).unwrap();
    let template = Template::build("acc.task").eq("job", "bench").done();
    let mut drained = 0;
    while drained < batch {
        let got = store
            .take_up_to(&template, 32, Some(std::time::Duration::ZERO))
            .unwrap();
        assert!(!got.is_empty(), "batch under-drained");
        drained += got.len();
    }
}

/// Median ns of `reps` timed cycles (median, not mean: one scheduler
/// hiccup must not decide an overhead ratio).
fn median_cycle_ns(store: &dyn TupleStore, batch: usize, reps: usize) -> f64 {
    let mut samples: Vec<u128> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            dispatch_cycle(store, batch);
            start.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2] as f64
}

fn main() {
    let measure = std::env::args().any(|a| a == "--bench");
    let mut results: Vec<(String, f64)> = Vec::new();

    let passes = if measure { 3 } else { 1 };

    // ----------------------------------------------------------------
    // Headline scaling arm: dispatch against a loaded space, 1 → 2 → 4
    // shards. Scan-path matching makes per-op cost track per-shard
    // content, so the ratio reflects the partitioning design, not the
    // host's disk or core count.
    // ----------------------------------------------------------------
    let per_writer = if measure { 64 } else { 8 };
    let backlog = if measure { 4096 } else { 64 };
    for shards in [1usize, 2, 4] {
        let mut samples: Vec<f64> = (0..passes)
            .map(|_| loaded_dispatch_ns(shards, per_writer, backlog))
            .collect();
        samples.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let ns = samples[samples.len() / 2];
        let label = format!("spacegrid/loaded_dispatch/{shards}shards");
        if measure {
            println!(
                "{label}: {ns:.0} ns/iter ({} tuples over {backlog} backlog, {:.0} tuples/s)",
                WRITERS * per_writer,
                1e9 / ns
            );
        } else {
            println!("{label}: ok (test mode, {} tuples)", WRITERS * per_writer);
        }
        results.push((label, ns));
    }

    // ----------------------------------------------------------------
    // Secondary scaling arm: durable batched dispatch, 1 → 2 → 4
    // shards (fsync-overlap bound; ratio is host-disk dependent).
    // ----------------------------------------------------------------
    let per_writer = if measure { 128 } else { 8 };
    for shards in [1usize, 2, 4] {
        // Median of independent passes (fresh shards each): fsync
        // latency on shared hosts is too jittery for a single sample.
        let mut samples: Vec<f64> = (0..passes)
            .map(|_| durable_dispatch_ns(shards, per_writer))
            .collect();
        samples.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let ns = samples[samples.len() / 2];
        let label = format!("spacegrid/durable_dispatch/{shards}shards");
        if measure {
            println!(
                "{label}: {ns:.0} ns/iter ({} tuples, {} threads, {:.0} tuples/s)",
                WRITERS * per_writer,
                WRITERS,
                1e9 / ns * 1.0
            );
        } else {
            println!("{label}: ok (test mode, {} tuples)", WRITERS * per_writer);
        }
        results.push((label, ns));
    }

    // ----------------------------------------------------------------
    // Overhead arm: 1-shard grid vs direct RemoteSpace, non-durable.
    // ----------------------------------------------------------------
    let batch = if measure { 512 } else { 32 };
    let reps = if measure { 30 } else { 1 };
    let direct_ns = {
        let rig = ShardRig::plain(1);
        let remote = RemoteSpace::connect(rig.addrs()[0]).unwrap();
        median_cycle_ns(&remote, batch, reps)
    };
    let grid_ns = {
        let rig = ShardRig::plain(1);
        let grid = PartitionedSpace::connect(&rig.addrs()).unwrap();
        median_cycle_ns(&grid, batch, reps)
    };
    for (label, ns) in [
        ("spacegrid/overhead/direct_remote", direct_ns),
        ("spacegrid/overhead/grid_1shard", grid_ns),
    ] {
        if measure {
            println!("{label}: {ns:.0} ns/iter (batch {batch}, {reps} samples)");
        } else {
            println!("{label}: ok (test mode, 1 iter)");
        }
        results.push((label.to_owned(), ns));
    }

    if !measure {
        println!("spacegrid: smoke ok");
        return;
    }

    // ----------------------------------------------------------------
    // Derived figures + perf-trajectory export.
    // ----------------------------------------------------------------
    let ns_of = |needle: &str| {
        results
            .iter()
            .find(|(l, _)| l.contains(needle))
            .map(|(_, ns)| *ns)
            .unwrap()
    };
    let scaling_4x = ns_of("loaded_dispatch/1shards") / ns_of("loaded_dispatch/4shards");
    let durable_4x = ns_of("durable_dispatch/1shards") / ns_of("durable_dispatch/4shards");
    let overhead_pct = (grid_ns / direct_ns - 1.0) * 100.0;
    println!("spacegrid/scaling_4_shards_vs_1: {scaling_4x:.2}x");
    println!("spacegrid/durable_scaling_4_shards_vs_1: {durable_4x:.2}x");
    println!("spacegrid/overhead_1shard_vs_direct: {overhead_pct:+.1}%");

    let mut json = String::from("{\n  \"bench\": \"spacegrid\",\n  \"results_ns\": {\n");
    for (i, (label, ns)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        json.push_str(&format!("    \"{label}\": {ns:.0}{comma}\n"));
    }
    json.push_str(&format!(
        "  }},\n  \"scaling_4_shards_vs_1\": {scaling_4x:.3},\n  \"durable_scaling_4_shards_vs_1\": {durable_4x:.3},\n  \"overhead_1shard_pct\": {overhead_pct:.2}\n}}\n"
    ));
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_spacegrid.json");
    std::fs::write(out, json).unwrap();
    println!("spacegrid: wrote {out}");
}
