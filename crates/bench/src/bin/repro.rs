//! Regenerates the paper's evaluation artifacts.
//!
//! Usage: `cargo run --release -p acc-bench --bin repro -- [artifact...]`
//! where each artifact is one of `fig6 fig7 fig8 fig9 fig10 fig11 exp3
//! table2 all` (default `all`).

use acc_bench::{ascii_plot, Table};
use acc_cluster::LoadTrace;
use acc_core::Thresholds;
use acc_sim::cluster::{simulate, SimConfig};
use acc_sim::{run_adaptation, run_dynamics, run_scalability, AppProfile};
use acc_telemetry::registry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        vec![
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "exp3",
            "table2",
            "ablations",
            "hetero",
            "baseline",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };
    for artifact in wanted {
        match artifact {
            "fig6" => scalability_figure("Figure 6", &AppProfile::option_pricing(), None),
            "fig7" => scalability_figure("Figure 7", &AppProfile::ray_tracing(), None),
            "fig8" => scalability_figure("Figure 8", &AppProfile::prefetch(), None),
            "fig9" => adaptation_figure("Figure 9", &AppProfile::option_pricing()),
            "fig10" => adaptation_figure("Figure 10", &AppProfile::ray_tracing()),
            "fig11" => adaptation_figure("Figure 11", &AppProfile::prefetch()),
            "exp3" => dynamics_experiment(),
            "table2" => table2(),
            "ablations" => ablations(),
            "hetero" => heterogeneity(),
            "baseline" => baseline(),
            other => eprintln!("unknown artifact: {other}"),
        }
    }
    // Everything the simulator just replayed also landed in the global
    // telemetry registry (sim.* virtual-time series plus any real-runtime
    // series); persist the dump next to the captured stdout so regenerated
    // figures come with their per-phase histograms.
    match std::fs::write("telemetry.json", registry().render_json()) {
        Ok(()) => eprintln!("telemetry written to telemetry.json"),
        Err(e) => eprintln!("could not write telemetry.json: {e}"),
    }
}

/// Baseline — adaptive parallelism vs Condor-style job-level parallelism
/// under round-robin eviction churn (paper §2's two categories).
fn baseline() {
    println!("== Baseline — adaptive parallelism vs job-level parallelism (churn) ==");
    let mut table = Table::new(&[
        "application",
        "adaptive (this framework) ms",
        "job-level (Condor model) ms",
        "advantage",
        "migrations paid",
    ]);
    for profile in AppProfile::all() {
        let row = acc_sim::run_baseline_comparison(&profile, 60_000);
        table.row(vec![
            row.app.clone(),
            format!("{:.0}", row.adaptive_ms),
            format!("{:.0}", row.job_level_ms),
            format!("{:.2}x", row.job_level_ms / row.adaptive_ms),
            row.migrations.to_string(),
        ]);
    }
    println!("{}", table.render());
}

/// Extension — heterogeneity: worker-driven bag-of-tasks vs static
/// partitioning on a mixed 300/800 MHz cluster.
fn heterogeneity() {
    println!("== Extension — Heterogeneous cluster (mixed 300/800 MHz workers) ==");
    let mut table = Table::new(&[
        "application",
        "workers",
        "bag-of-tasks (ms)",
        "static partition (ms)",
        "advantage",
        "fast-node tasks",
        "slow-node tasks",
    ]);
    for profile in AppProfile::all() {
        for n in [2usize, 4] {
            let row = acc_sim::run_heterogeneity(&profile, n);
            table.row(vec![
                profile.name.clone(),
                n.to_string(),
                format!("{:.0}", row.bag_of_tasks_ms),
                format!("{:.0}", row.static_partition_ms),
                format!("{:.2}x", row.static_partition_ms / row.bag_of_tasks_ms),
                row.fast_node_tasks.to_string(),
                row.slow_node_tasks.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
}

/// The design ablations of DESIGN.md §5, in virtual time.
fn ablations() {
    println!("== Ablations — design choices under transient load ==");

    // 1. Pause/Resume vs Stop-only under pause-band flapping. Short tasks
    // (pre-fetching) flap often: Stop-only pays class loading per cycle.
    let run_thresholds = |thresholds: Thresholds| {
        let mut profile = AppProfile::prefetch();
        profile.tasks = 400;
        let mut cfg = SimConfig::new(profile, 2);
        cfg.cost.thresholds = thresholds;
        cfg.traces[0] = Some(LoadTrace::flapping(40, 600_000, 2_000));
        cfg.horizon_ms = 600_000.0;
        simulate(cfg)
    };
    let with_pause = run_thresholds(Thresholds::paper());
    let stop_only = run_thresholds(Thresholds::new(25, 25));
    let mut t = Table::new(&[
        "policy",
        "parallel (ms)",
        "tasks by flapped worker",
        "signals on flapped worker",
    ]);
    for (label, out) in [
        ("Pause/Resume (paper)", &with_pause),
        ("Stop-only (no Paused state)", &stop_only),
    ] {
        t.row(vec![
            label.into(),
            format!("{:.0}", out.times.parallel_ms),
            out.workers[0].tasks_done.to_string(),
            out.workers[0].signal_log.len().to_string(),
        ]);
    }
    println!("-- 1. Paused state vs Stop-only --\n{}", t.render());

    // 2. Poll interval: reaction latency governs how long the framework
    // keeps computing on a node its owner has reclaimed (intrusiveness).
    let mut t = Table::new(&[
        "poll interval (ms)",
        "intrusion on flapped worker (ms)",
        "parallel (ms)",
    ]);
    for interval in [50.0f64, 250.0, 1000.0, 4000.0] {
        let mut profile = AppProfile::prefetch();
        profile.tasks = 400;
        let mut cfg = SimConfig::new(profile, 2);
        cfg.cost.poll_interval_ms = interval;
        // Flap period co-prime with the poll intervals so the poll grid
        // does not alias onto the load transitions.
        cfg.traces[0] = Some(LoadTrace::flapping(40, 600_000, 7_300));
        cfg.horizon_ms = 600_000.0;
        let out = simulate(cfg);
        t.row(vec![
            format!("{interval:.0}"),
            format!("{:.0}", out.workers[0].intrusion_ms),
            format!("{:.0}", out.times.parallel_ms),
        ]);
    }
    println!("-- 2. SNMP poll interval --\n{}", t.render());

    // 3. Task granularity at constant total work (4 workers, pricing).
    let base = AppProfile::option_pricing();
    let total_work = base.task_work_ms * base.tasks as f64;
    let mut t = Table::new(&["tasks", "task work (ms)", "planning (ms)", "parallel (ms)"]);
    for tasks in [10usize, 50, 100, 500] {
        let mut profile = base.clone();
        profile.tasks = tasks;
        profile.task_work_ms = total_work / tasks as f64;
        let out = simulate(SimConfig::new(profile.clone(), 4));
        t.row(vec![
            tasks.to_string(),
            format!("{:.0}", profile.task_work_ms),
            format!("{:.0}", out.times.task_planning_ms),
            format!("{:.0}", out.times.parallel_ms),
        ]);
    }
    println!(
        "-- 3. Task granularity (option pricing, 4 workers) --\n{}",
        t.render()
    );

    // 4. Class-load cost under stop-inducing flaps.
    let mut t = Table::new(&["class load (ms)", "parallel (ms)"]);
    for cost in [0.0f64, 350.0, 2000.0] {
        let mut cfg = SimConfig::new(AppProfile::ray_tracing(), 2);
        cfg.cost.class_load_ms = cost;
        cfg.traces[0] = Some(LoadTrace::flapping(100, 600_000, 6_000));
        cfg.horizon_ms = 600_000.0;
        let out = simulate(cfg);
        t.row(vec![
            format!("{cost:.0}"),
            format!("{:.0}", out.times.parallel_ms),
        ]);
    }
    println!("-- 4. Class-loading cost sensitivity --\n{}", t.render());
}

fn scalability_figure(label: &str, profile: &AppProfile, cap: Option<usize>) {
    println!(
        "== {label} — Scalability Analysis, {} ({} tasks, testbed {}) ==",
        profile.name, profile.tasks, profile.testbed.name
    );
    let rows = run_scalability(profile, cap);
    let mut table = Table::new(&[
        "workers",
        "max worker (ms)",
        "parallel (ms)",
        "task planning (ms)",
        "task aggregation (ms)",
        "speedup",
    ]);
    let base = rows[0].parallel_ms;
    for row in &rows {
        table.row(vec![
            row.workers.to_string(),
            format!("{:.0}", row.max_worker_ms),
            format!("{:.0}", row.parallel_ms),
            format!("{:.0}", row.task_planning_ms),
            format!("{:.0}", row.task_aggregation_ms),
            format!("{:.2}x", base / row.parallel_ms),
        ]);
    }
    println!("{}", table.render());
}

fn adaptation_figure(label: &str, profile: &AppProfile) {
    println!(
        "== {label} — Adaptation Protocol Analysis, {} ==",
        profile.name
    );
    let report = run_adaptation(profile);
    println!("-- (a) worker CPU usage over the scripted load sequence --");
    let points: Vec<(u64, u64)> = report.usage.iter().map(|p| (p.at_ms, p.load)).collect();
    print!("{}", ascii_plot(&points, 20));
    println!();
    println!("-- (b) signal reaction times --");
    let mut table = Table::new(&[
        "signal",
        "client signal (ms)",
        "worker signal (ms)",
        "reaction (ms)",
        "new state",
    ]);
    for entry in &report.signals {
        table.row(vec![
            entry.signal.to_string(),
            entry.client_signal_ms.to_string(),
            entry.worker_signal_ms.to_string(),
            entry.reaction_ms().to_string(),
            entry.new_state.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "tasks completed despite interference: {}",
        report.tasks_done
    );
    println!();
}

fn dynamics_experiment() {
    println!("== §5.2.3 — Dynamic Worker Behaviour under Varying Load ==");
    for profile in AppProfile::all() {
        println!(
            "-- {} ({} workers) --",
            profile.name,
            profile.testbed.worker_count()
        );
        let mut table = Table::new(&[
            "loaded workers",
            "max worker (ms)",
            "max master overhead (ms)",
            "planning+aggregation (ms)",
            "total parallel (ms)",
            "tasks on loaded workers",
        ]);
        for row in run_dynamics(&profile) {
            table.row(vec![
                format!(
                    "{} ({:.0}%)",
                    row.loaded_workers,
                    row.loaded_fraction * 100.0
                ),
                format!("{:.0}", row.max_worker_ms),
                format!("{:.1}", row.max_master_overhead_ms),
                format!("{:.0}", row.planning_and_aggregation_ms),
                format!("{:.0}", row.total_parallel_ms),
                row.tasks_on_loaded_workers.to_string(),
            ]);
        }
        println!("{}", table.render());
    }
}

/// Table 2 — classification of the evaluated applications, derived
/// empirically from the reproduced implementations.
fn table2() {
    println!("== Table 2 — Classification of the Evaluated Applications ==");
    let mut table = Table::new(&["metric", "option pricing", "ray tracing", "pre-fetching"]);

    // Scalability: the paper's class, with this reproduction's measured
    // speedup on the app's own testbed alongside.
    let speedups: Vec<f64> = AppProfile::all()
        .iter()
        .map(|p| {
            let rows = run_scalability(p, None);
            rows[0].parallel_ms / rows.last().unwrap().parallel_ms
        })
        .collect();
    table.row(vec![
        "scalability (paper / measured)".into(),
        format!("Medium / {:.1}x on 13", speedups[0]),
        format!("High / {:.1}x on 5", speedups[1]),
        format!("Low / {:.1}x on 5", speedups[2]),
    ]);
    table.row(vec![
        "CPU per task (ref. machine)".into(),
        format!(
            "{:.0} ms (adaptable w/ #sims)",
            AppProfile::option_pricing().task_work_ms
        ),
        format!("{:.0} ms (high)", AppProfile::ray_tracing().task_work_ms),
        format!("{:.0} ms (low)", AppProfile::prefetch().task_work_ms),
    ]);
    table.row(vec![
        "memory / result size".into(),
        "tiny (two doubles)".into(),
        "large (25x600 RGB strip)".into(),
        "small (20 doubles)".into(),
    ]);
    table.row(vec![
        "task dependency".into(),
        "none".into(),
        "none".into(),
        "inter-iteration barrier".into(),
    ]);
    println!("{}", table.render());
}
