//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships a small timing harness covering the criterion API
//! subset the benches use: [`Criterion`] with `bench_function` /
//! `benchmark_group`, [`BenchmarkGroup`] with `throughput` /
//! `bench_with_input` / `finish`, [`BenchmarkId`], [`Throughput`],
//! [`Bencher::iter`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros (including the `name = …; config = …; targets = …` form).
//!
//! Mode selection mirrors the real crate: `cargo bench` passes `--bench`
//! to the harness binary and gets full measurement; any other invocation
//! (notably `cargo test`, which also builds `harness = false` bench
//! targets) runs each benchmark body exactly once as a smoke test.
//! There is no statistical analysis — each benchmark reports the median
//! ns/iter over `sample_size` samples.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque identity function that defeats constant-folding.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full measurement (`cargo bench`).
    Measure,
    /// One iteration per benchmark (`cargo test` smoke run).
    Test,
}

fn detect_mode() -> Mode {
    if std::env::args().any(|a| a == "--bench") {
        Mode::Measure
    } else {
        Mode::Test
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes handled per iteration.
    Bytes(u64),
    /// Logical elements handled per iteration.
    Elements(u64),
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id naming the parameter of a parameterised benchmark.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// The benchmark driver handed to each registered bench function.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    mode: Mode,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
            mode: detect_mode(),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for the timed samples of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Time spent running the body before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = self.bencher(id.to_string(), None);
        f(&mut b);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    fn bencher(&self, label: String, throughput: Option<Throughput>) -> Bencher {
        Bencher {
            mode: self.mode,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            label,
            throughput,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        let mut b = self.criterion.bencher(label, self.throughput);
        f(&mut b);
        self
    }

    /// Runs a parameterised benchmark in this group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        let mut b = self.criterion.bencher(label, self.throughput);
        f(&mut b, input);
        self
    }

    /// Ends the group. (Reporting happens per-benchmark; this is a no-op
    /// kept for API compatibility.)
    pub fn finish(self) {}
}

/// Times one benchmark body.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    label: String,
    throughput: Option<Throughput>,
}

impl Bencher {
    /// Runs `f` repeatedly and reports the median time per call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.mode == Mode::Test {
            black_box(f());
            println!("{}: ok (test mode, 1 iter)", self.label);
            return;
        }

        // Warm up, running the body at least once.
        let warm_deadline = Instant::now() + self.warm_up_time;
        loop {
            black_box(f());
            if Instant::now() >= warm_deadline {
                break;
            }
        }

        // Calibrate a batch size that takes roughly one sample's slice of
        // the measurement budget (bounded below by 1ms for timer noise).
        let slice = (self.measurement_time / self.sample_size as u32).max(Duration::from_millis(1));
        let mut batch: u64 = 1;
        let mut elapsed;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            elapsed = start.elapsed();
            if elapsed >= slice || batch >= 1 << 40 {
                break;
            }
            // Jump toward the target in one step once we have a signal.
            batch = if elapsed < slice / 16 {
                batch * 16
            } else {
                let per_iter = (elapsed.as_nanos() / batch as u128).max(1);
                ((slice.as_nanos() / per_iter).max(1) as u64).max(batch + 1)
            };
        }

        let mut samples_ns_per_iter: Vec<u128> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos().max(1);
            samples_ns_per_iter.push(ns / batch as u128);
        }
        samples_ns_per_iter.sort_unstable();
        let median = samples_ns_per_iter[samples_ns_per_iter.len() / 2].max(1);

        let mut line = format!(
            "{}: {} ns/iter (batch {batch}, {} samples)",
            self.label, median, self.sample_size
        );
        match self.throughput {
            Some(Throughput::Bytes(n)) => {
                let mbps = n as f64 * 1e9 / median as f64 / (1024.0 * 1024.0);
                line.push_str(&format!(", {mbps:.1} MiB/s"));
            }
            Some(Throughput::Elements(n)) => {
                let eps = n as f64 * 1e9 / median as f64;
                line.push_str(&format!(", {eps:.0} elem/s"));
            }
            None => {}
        }
        println!("{line}");
    }
}

/// Declares a benchmark group function callable from [`criterion_main!`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_mode_runs_body_once() {
        let mut calls = 0u32;
        let mut c = Criterion {
            mode: Mode::Test,
            ..Criterion::default()
        };
        c.bench_function("unit/one", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn group_labels_and_throughput_compose() {
        let mut c = Criterion {
            mode: Mode::Test,
            ..Criterion::default()
        };
        let mut group = c.benchmark_group("unit/group");
        group.throughput(Throughput::Bytes(64));
        let mut seen = Vec::new();
        for n in [1usize, 4] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| seen.push(n));
            });
        }
        group.bench_function("plain", |b| b.iter(|| seen.push(99)));
        group.finish();
        assert_eq!(seen, vec![1, 4, 99]);
    }

    #[test]
    fn measure_mode_times_fast_body() {
        let mut c = Criterion {
            mode: Mode::Measure,
            ..Criterion::default()
        }
        .sample_size(3)
        .measurement_time(Duration::from_millis(30))
        .warm_up_time(Duration::from_millis(5));
        let mut count = 0u64;
        c.bench_function("unit/fast", |b| b.iter(|| count += 1));
        assert!(count > 3);
    }
}
