//! Scenes, cameras and lights.

use super::geometry::{Material, Plane, Ray, Shape, Sphere, Triangle};
use super::math::Vec3;

/// A point light source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Light {
    /// Position.
    pub position: Vec3,
    /// RGB intensity.
    pub intensity: Vec3,
}

/// A pinhole camera generating per-pixel primary rays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Camera {
    /// Eye position.
    pub position: Vec3,
    /// Point looked at.
    pub look_at: Vec3,
    /// Up hint.
    pub up: Vec3,
    /// Vertical field of view in degrees.
    pub fov_degrees: f64,
}

impl Camera {
    /// The primary ray through pixel `(px, py)` of a `width`×`height`
    /// image plane. Pixel centers are sampled; `py` grows downward.
    pub fn primary_ray(&self, px: u32, py: u32, width: u32, height: u32) -> Ray {
        let forward = (self.look_at - self.position).normalized();
        let right = forward.cross(self.up).normalized();
        let up = right.cross(forward);
        let aspect = width as f64 / height as f64;
        let half_h = (self.fov_degrees.to_radians() / 2.0).tan();
        let half_w = half_h * aspect;
        let u = ((px as f64 + 0.5) / width as f64 * 2.0 - 1.0) * half_w;
        let v = (1.0 - (py as f64 + 0.5) / height as f64 * 2.0) * half_h;
        Ray::new(self.position, forward + right * u + up * v)
    }
}

/// A renderable scene.
#[derive(Clone)]
pub struct Scene {
    /// Scene geometry.
    pub objects: Vec<Shape>,
    /// Point lights.
    pub lights: Vec<Light>,
    /// The camera.
    pub camera: Camera,
    /// Color returned by rays that hit nothing.
    pub background: Vec3,
    /// Maximum reflection recursion depth.
    pub max_depth: u32,
}

/// The deterministic scene used by the evaluation: a checkerboard floor,
/// a mirror sphere, and a ring of matte spheres — enough geometry that
/// per-pixel cost varies across the image, as the paper notes for real
/// models.
pub fn benchmark_scene() -> Scene {
    let mut objects = vec![
        Shape::Plane(Plane {
            point: Vec3::new(0.0, -1.0, 0.0),
            normal: Vec3::new(0.0, 1.0, 0.0),
            material: Material::matte(Vec3::new(0.9, 0.9, 0.9)),
            checker: Some(Vec3::new(0.15, 0.15, 0.2)),
        }),
        Shape::Sphere(Sphere {
            center: Vec3::new(0.0, 0.6, -6.0),
            radius: 1.6,
            material: Material::shiny(Vec3::new(0.9, 0.9, 0.95), 0.6),
        }),
    ];
    // Ring of matte spheres around the mirror ball.
    let palette = [
        Vec3::new(0.9, 0.2, 0.2),
        Vec3::new(0.2, 0.8, 0.3),
        Vec3::new(0.2, 0.4, 0.9),
        Vec3::new(0.9, 0.8, 0.2),
        Vec3::new(0.8, 0.3, 0.8),
        Vec3::new(0.3, 0.8, 0.8),
    ];
    for (i, color) in palette.iter().enumerate() {
        let angle = i as f64 / palette.len() as f64 * std::f64::consts::TAU;
        objects.push(Shape::Sphere(Sphere {
            center: Vec3::new(3.2 * angle.cos(), -0.4, -6.0 + 3.2 * angle.sin()),
            radius: 0.6,
            material: Material::shiny(*color, 0.15),
        }));
    }
    // A golden tetrahedron-style pair of triangles behind the ring.
    let apex = Vec3::new(-4.5, 1.8, -9.0);
    let base_l = Vec3::new(-6.0, -1.0, -8.0);
    let base_r = Vec3::new(-3.0, -1.0, -8.5);
    let base_b = Vec3::new(-4.8, -1.0, -10.5);
    let gold = Material::shiny(Vec3::new(0.95, 0.78, 0.25), 0.25);
    objects.push(Shape::Triangle(Triangle {
        a: base_l,
        b: base_r,
        c: apex,
        material: gold,
    }));
    objects.push(Shape::Triangle(Triangle {
        a: base_r,
        b: base_b,
        c: apex,
        material: gold,
    }));
    Scene {
        objects,
        lights: vec![
            Light {
                position: Vec3::new(-5.0, 6.0, 0.0),
                intensity: Vec3::new(0.9, 0.9, 0.9),
            },
            Light {
                position: Vec3::new(4.0, 3.0, -2.0),
                intensity: Vec3::new(0.4, 0.4, 0.5),
            },
        ],
        camera: Camera {
            position: Vec3::new(0.0, 1.2, 2.0),
            look_at: Vec3::new(0.0, 0.0, -6.0),
            up: Vec3::new(0.0, 1.0, 0.0),
            fov_degrees: 55.0,
        },
        background: Vec3::new(0.05, 0.07, 0.12),
        max_depth: 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_rays_span_the_frustum() {
        let cam = benchmark_scene().camera;
        let center = cam.primary_ray(300, 300, 600, 600);
        let left = cam.primary_ray(0, 300, 600, 600);
        let right = cam.primary_ray(599, 300, 600, 600);
        // Center ray points roughly at look_at.
        let to_target = (cam.look_at - cam.position).normalized();
        assert!(center.dir.dot(to_target) > 0.999);
        // Left and right rays diverge symmetrically.
        assert!(left.dir.x < center.dir.x);
        assert!(right.dir.x > center.dir.x);
        assert!((left.dir.x + right.dir.x - 2.0 * center.dir.x).abs() < 1e-2);
    }

    #[test]
    fn rays_are_unit_length() {
        let cam = benchmark_scene().camera;
        for (px, py) in [(0, 0), (599, 0), (0, 599), (599, 599), (300, 300)] {
            let ray = cam.primary_ray(px, py, 600, 600);
            assert!((ray.dir.length() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn benchmark_scene_is_deterministic_and_nontrivial() {
        let a = benchmark_scene();
        let b = benchmark_scene();
        assert_eq!(a.objects.len(), b.objects.len());
        assert_eq!(a.objects.len(), 10);
        assert_eq!(a.lights.len(), 2);
        assert_eq!(a.objects[3], b.objects[3]);
    }
}
