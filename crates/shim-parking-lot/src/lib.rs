//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships a minimal, API-compatible implementation of the subset
//! the codebase uses: [`Mutex`], [`RwLock`] and [`Condvar`] with
//! non-poisoning guards. Everything is a thin wrapper over `std::sync`;
//! poison errors are swallowed (parking_lot has no lock poisoning).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::{Duration, Instant};

/// A mutual exclusion primitive (non-poisoning `std::sync::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable, paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Blocks until notified or `timeout` has elapsed.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, result) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(result.timed_out())
    }

    /// Blocks until notified or the absolute `deadline` is reached.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let now = Instant::now();
        if deadline <= now {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, deadline - now)
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes every waiting thread.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar")
    }
}

/// A reader-writer lock (non-poisoning `std::sync::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let h = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn condvar_wait_until_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(r.timed_out());
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }
}
