//! The agent-side management information base.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use crate::oid::Oid;
use crate::pdu::{ErrorStatus, SnmpValue};

type Getter = Arc<dyn Fn() -> SnmpValue + Send + Sync>;
type Setter = Arc<dyn Fn(SnmpValue) -> Result<(), ErrorStatus> + Send + Sync>;

struct Variable {
    getter: Getter,
    setter: Option<Setter>,
}

/// A tree of managed variables keyed by [`Oid`], in MIB walk order.
#[derive(Default)]
pub struct Mib {
    vars: BTreeMap<Oid, Variable>,
}

impl fmt::Debug for Mib {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mib")
            .field("vars", &self.vars.len())
            .finish()
    }
}

impl Mib {
    /// An empty MIB.
    pub fn new() -> Mib {
        Mib::default()
    }

    /// Registers a constant value.
    pub fn register_const(&mut self, oid: Oid, value: SnmpValue) {
        self.register(oid, move || value.clone());
    }

    /// Registers a dynamic read-only variable.
    pub fn register(&mut self, oid: Oid, getter: impl Fn() -> SnmpValue + Send + Sync + 'static) {
        self.vars.insert(
            oid,
            Variable {
                getter: Arc::new(getter),
                setter: None,
            },
        );
    }

    /// Registers a dynamic gauge (convenience for CPU-load style variables).
    pub fn register_gauge(&mut self, oid: Oid, getter: impl Fn() -> u64 + Send + Sync + 'static) {
        self.register(oid, move || SnmpValue::Gauge(getter()));
    }

    /// Registers a writable variable.
    pub fn register_writable(
        &mut self,
        oid: Oid,
        getter: impl Fn() -> SnmpValue + Send + Sync + 'static,
        setter: impl Fn(SnmpValue) -> Result<(), ErrorStatus> + Send + Sync + 'static,
    ) {
        self.vars.insert(
            oid,
            Variable {
                getter: Arc::new(getter),
                setter: Some(Arc::new(setter)),
            },
        );
    }

    /// Reads a variable.
    pub fn get(&self, oid: &Oid) -> Option<SnmpValue> {
        self.vars.get(oid).map(|v| (v.getter)())
    }

    /// Returns the first variable strictly after `oid` in walk order.
    pub fn next(&self, oid: &Oid) -> Option<(Oid, SnmpValue)> {
        use std::ops::Bound;
        self.vars
            .range((Bound::Excluded(oid.clone()), Bound::Unbounded))
            .next()
            .map(|(o, v)| (o.clone(), (v.getter)()))
    }

    /// Writes a variable; errors mirror SNMP semantics.
    pub fn set(&self, oid: &Oid, value: SnmpValue) -> Result<(), ErrorStatus> {
        match self.vars.get(oid) {
            None => Err(ErrorStatus::NoSuchName),
            Some(var) => match &var.setter {
                None => Err(ErrorStatus::ReadOnly),
                Some(setter) => setter(value),
            },
        }
    }

    /// Number of registered variables.
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// True when no variables are registered.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Walks the entire MIB in order (for diagnostics).
    pub fn walk(&self) -> Vec<(Oid, SnmpValue)> {
        self.vars
            .iter()
            .map(|(o, v)| (o.clone(), (v.getter)()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn get_const_and_dynamic() {
        let mut mib = Mib::new();
        mib.register_const(Oid::parse("1.1").unwrap(), SnmpValue::Int(5));
        let counter = Arc::new(AtomicU64::new(0));
        let c2 = counter.clone();
        mib.register(Oid::parse("1.2").unwrap(), move || {
            SnmpValue::Counter(c2.fetch_add(1, Ordering::Relaxed))
        });
        assert_eq!(
            mib.get(&Oid::parse("1.1").unwrap()),
            Some(SnmpValue::Int(5))
        );
        assert_eq!(
            mib.get(&Oid::parse("1.2").unwrap()),
            Some(SnmpValue::Counter(0))
        );
        assert_eq!(
            mib.get(&Oid::parse("1.2").unwrap()),
            Some(SnmpValue::Counter(1))
        );
        assert_eq!(mib.get(&Oid::parse("9.9").unwrap()), None);
    }

    #[test]
    fn next_walks_in_order() {
        let mut mib = Mib::new();
        for s in ["1.3.1", "1.3.1.1", "1.3.2", "1.4"] {
            mib.register_const(Oid::parse(s).unwrap(), SnmpValue::Null);
        }
        let (n1, _) = mib.next(&Oid::parse("1.3").unwrap()).unwrap();
        assert_eq!(n1.to_string(), "1.3.1");
        let (n2, _) = mib.next(&n1).unwrap();
        assert_eq!(n2.to_string(), "1.3.1.1");
        let (n3, _) = mib.next(&n2).unwrap();
        assert_eq!(n3.to_string(), "1.3.2");
        let (n4, _) = mib.next(&n3).unwrap();
        assert_eq!(n4.to_string(), "1.4");
        assert!(mib.next(&n4).is_none());
    }

    #[test]
    fn set_semantics() {
        let mut mib = Mib::new();
        mib.register_const(Oid::parse("1.1").unwrap(), SnmpValue::Int(1));
        let cell = Arc::new(AtomicU64::new(0));
        let get_cell = cell.clone();
        let set_cell = cell.clone();
        mib.register_writable(
            Oid::parse("1.2").unwrap(),
            move || SnmpValue::Gauge(get_cell.load(Ordering::Relaxed)),
            move |v| match v.as_u64() {
                Some(n) => {
                    set_cell.store(n, Ordering::Relaxed);
                    Ok(())
                }
                None => Err(ErrorStatus::BadValue),
            },
        );
        assert_eq!(
            mib.set(&Oid::parse("1.1").unwrap(), SnmpValue::Int(2)),
            Err(ErrorStatus::ReadOnly)
        );
        assert_eq!(
            mib.set(&Oid::parse("9.9").unwrap(), SnmpValue::Int(2)),
            Err(ErrorStatus::NoSuchName)
        );
        mib.set(&Oid::parse("1.2").unwrap(), SnmpValue::Gauge(7))
            .unwrap();
        assert_eq!(
            mib.get(&Oid::parse("1.2").unwrap()),
            Some(SnmpValue::Gauge(7))
        );
        assert_eq!(
            mib.set(&Oid::parse("1.2").unwrap(), SnmpValue::Null),
            Err(ErrorStatus::BadValue)
        );
    }

    #[test]
    fn walk_lists_everything() {
        let mut mib = Mib::new();
        mib.register_gauge(Oid::parse("1.1").unwrap(), || 1);
        mib.register_gauge(Oid::parse("1.2").unwrap(), || 2);
        let walked = mib.walk();
        assert_eq!(walked.len(), 2);
        assert_eq!(walked[0].1, SnmpValue::Gauge(1));
        assert_eq!(walked[1].1, SnmpValue::Gauge(2));
    }
}
