//! Entry leases.
//!
//! Every entry written into a space is governed by a lease, after which the
//! space may reclaim it — the Jini resource-management discipline. Most
//! framework entries use [`Lease::forever`]; heartbeat-style entries (worker
//! registrations) use short leases that must be renewed.

use std::time::{Duration, Instant};

/// Identifier for a granted lease (equal to the entry id it covers).
pub type LeaseId = u64;

/// How long an entry may live in the space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Lease {
    /// The entry never expires (until taken or the space is dropped).
    #[default]
    Forever,
    /// The entry expires after this duration.
    Duration(Duration),
}

impl Lease {
    /// A lease that never expires.
    pub fn forever() -> Lease {
        Lease::Forever
    }

    /// A lease for the given duration.
    pub fn for_duration(d: Duration) -> Lease {
        Lease::Duration(d)
    }

    /// A lease for the given number of milliseconds.
    pub fn for_millis(ms: u64) -> Lease {
        Lease::Duration(Duration::from_millis(ms))
    }

    /// Absolute expiry deadline starting from `now`, or `None` for forever.
    pub fn deadline_from(&self, now: Instant) -> Option<Instant> {
        match self {
            Lease::Forever => None,
            Lease::Duration(d) => Some(now + *d),
        }
    }

    /// Like [`Lease::deadline_from`] with the current instant, but skips
    /// reading the clock entirely for `Forever` leases (the hot write path).
    pub fn deadline(&self) -> Option<Instant> {
        match self {
            Lease::Forever => None,
            Lease::Duration(d) => Some(Instant::now() + *d),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forever_has_no_deadline() {
        assert_eq!(Lease::forever().deadline_from(Instant::now()), None);
    }

    #[test]
    fn duration_deadline_is_offset() {
        let now = Instant::now();
        let d = Lease::for_millis(250).deadline_from(now).unwrap();
        assert_eq!(d - now, Duration::from_millis(250));
    }

    #[test]
    fn default_is_forever() {
        assert_eq!(Lease::default(), Lease::Forever);
    }
}
