//! Sequential baseline renderer.

use super::scene::Scene;
use super::tasks::Image;
use super::trace::render_strip;

/// Renders the whole image on the calling thread. The parallel app must
/// produce byte-identical output (the tracer is deterministic).
pub fn render_sequential(scene: &Scene, width: u32, height: u32) -> Image {
    Image {
        width,
        height,
        pixels: render_strip(scene, 0, height, width, height),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raytrace::scene::benchmark_scene;

    #[test]
    fn deterministic_output() {
        let scene = benchmark_scene();
        let a = render_sequential(&scene, 32, 32);
        let b = render_sequential(&scene, 32, 32);
        assert_eq!(a, b);
    }

    #[test]
    fn image_is_nontrivial() {
        let image = render_sequential(&benchmark_scene(), 48, 48);
        let distinct: std::collections::HashSet<[u8; 3]> = (0..48)
            .flat_map(|y| (0..48).map(move |x| (x, y)))
            .map(|(x, y)| image.pixel(x, y))
            .collect();
        assert!(
            distinct.len() > 20,
            "only {} distinct colors",
            distinct.len()
        );
    }
}
