//! # adaptive-spaces
//!
//! A Rust reproduction of *“A Framework for Adaptive Cluster Computing using
//! JavaSpaces”* (Batheja & Parashar, IEEE CLUSTER 2001): opportunistic
//! master–worker parallel computing over a JavaSpaces-style tuple space, with
//! SNMP-based system-state monitoring driving non-intrusive adaptation.
//!
//! This facade crate re-exports the workspace's crates under one roof:
//!
//! * [`space`] — the tuple space (write/read/take, templates, transactions,
//!   leases, events);
//! * [`spacegrid`] — the partitioned multi-server space: hash routing and
//!   scatter-gather over N space servers behind the same store interface;
//! * [`federation`] — Jini-style discovery and lookup;
//! * [`snmp`] — the monitoring stack (OIDs, PDUs, MIB, agent, manager);
//! * [`cluster`] — node models and the paper's synthetic load simulators;
//! * [`framework`] — the adaptive master–worker framework itself;
//! * [`apps`] — the three evaluation applications (option pricing, ray
//!   tracing, web-page pre-fetching);
//! * [`sim`] — the deterministic discrete-event simulator that regenerates
//!   the paper's figures;
//! * [`telemetry`] — the workspace-wide metrics registry and structured
//!   tracing facade every layer reports into;
//! * [`durability`] — the write-ahead log, snapshot, and crash-recovery
//!   subsystem backing durable spaces and master checkpoints.
//!
//! See the repository README for a quickstart and `DESIGN.md` for the
//! complete system inventory.

pub use acc_apps as apps;
pub use acc_cluster as cluster;
pub use acc_core as framework;
pub use acc_durability as durability;
pub use acc_federation as federation;
pub use acc_sim as sim;
pub use acc_snmp as snmp;
pub use acc_spacegrid as spacegrid;
pub use acc_telemetry as telemetry;
pub use acc_tuplespace as space;
