//! # acc-tuplespace
//!
//! A JavaSpaces-style associative tuple space: the coordination substrate of
//! the adaptive cluster-computing framework (Batheja & Parashar, CLUSTER
//! 2001, §3).
//!
//! A [`Space`] is a shared repository of [`Tuple`]s. Processes cooperate by
//! the flow of tuples into and out of the space:
//!
//! * [`Space::write`] stores a tuple under a [`Lease`];
//! * [`Space::read`] returns a copy of a tuple matching a [`Template`]
//!   (associative, value-based lookup), blocking until one arrives;
//! * [`Space::take`] removes and returns a matching tuple;
//! * [`Space::notify`] registers interest in future matching writes;
//! * [`Txn`] transactions make groups of operations atomic: in the event of a
//!   partial failure the transaction either completes or has no effect,
//!   mirroring the paper's fault-tolerance claim for JavaSpaces.
//!
//! ```
//! use acc_tuplespace::{Space, Tuple, Template};
//! use std::time::Duration;
//!
//! let space = Space::new("demo");
//! space.write(Tuple::build("task").field("id", 7i64).field("body", "compute").done()).unwrap();
//!
//! // Value-based associative lookup: match any `task` with id == 7.
//! let tmpl = Template::build("task").eq("id", 7i64).done();
//! let t = space.take(&tmpl, Some(Duration::from_secs(1))).unwrap().unwrap();
//! assert_eq!(t.get_str("body"), Some("compute"));
//! ```

#![warn(missing_docs)]

mod codec;
mod error;
mod events;
mod journal;
mod lease;
mod payload;
pub mod remote;
mod space;
mod stats;
mod store;
mod template;
mod tuple;
mod txn;
mod value;

pub use acc_durability::{SyncPolicy, WalOptions};
pub use bytes::Bytes;
pub use error::{SpaceError, SpaceResult};
pub use events::{EventCookie, SpaceEvent};
pub use lease::{Lease, LeaseId};
pub use payload::{decode_frame, NameInterner, Payload, PayloadError, WireReader, WireWriter};
pub use remote::{RemoteSpace, SpaceServer};
pub use space::{EntryId, Space, SpaceHandle};
pub use stats::SpaceStats;
pub use store::{StoreHandle, TupleStore};
pub use template::{Constraint, Template, TemplateBuilder};
pub use tuple::{Tuple, TupleBuilder};
pub use txn::{Txn, TxnId, TxnState};
pub use value::Value;
