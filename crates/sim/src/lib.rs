//! # acc-sim
//!
//! A deterministic discrete-event simulator of the adaptive master–worker
//! runtime, used to regenerate the paper's evaluation on one machine.
//!
//! **Why a simulator?** The paper's experiments ran on physical testbeds —
//! thirteen 300 MHz PCs for option pricing, five 800 MHz PCs for ray
//! tracing and pre-fetching. Threads on a modern laptop cannot faithfully
//! reproduce a 13-machine cluster's queueing behaviour, so the figures are
//! regenerated in virtual time. The simulator is *not* a separate model of
//! the policies: it calls [`acc_core::InferenceEngine`] and
//! [`acc_core::WorkerState::apply`] directly, so the adaptation semantics
//! are exactly those of the real runtime; only time is virtual.
//!
//! Modules:
//! * [`model`] — the cost model (per-task work, master planning and
//!   aggregation costs, class-loading cost, SNMP poll interval) with
//!   per-application profiles calibrated to the paper's configurations;
//! * [`cluster`] — the event loop: task planning, worker service,
//!   SNMP polling, inference, signal delivery, state transitions;
//! * [`scalability`] — Figures 6–8 (parallel time decomposition versus
//!   number of workers);
//! * [`signals`] — Figures 9–11 (worker CPU usage under the scripted load
//!   sequence, and signal reaction times);
//! * [`dynamics`] — §5.2.3 (application behaviour with 0% / 25% / 50% of
//!   the workers loaded).
//!
//! ```
//! use acc_sim::{run_scalability, AppProfile};
//!
//! // Figure 7's first and last points: ray tracing on 1 and 5 workers.
//! let rows = run_scalability(&AppProfile::ray_tracing(), None);
//! assert_eq!(rows.len(), 5);
//! let speedup = rows[0].parallel_ms / rows[4].parallel_ms;
//! assert!(speedup > 3.5, "near-linear scaling, got {speedup}");
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod cluster;
pub mod dynamics;
pub mod heterogeneity;
pub mod model;
pub mod scalability;
mod series;
pub mod signals;

pub use baseline::{run_baseline_comparison, simulate_job_level, BaselineRow, JobLevelCosts};
pub use cluster::{SimConfig, SimOutcome, SimWorkerReport};
pub use dynamics::{run_dynamics, DynamicsRow};
pub use heterogeneity::{mixed_testbed, run_heterogeneity, HeterogeneityRow};
pub use model::{AppProfile, CostModel};
pub use scalability::{run_scalability, ScalabilityRow};
pub use signals::{run_adaptation, AdaptationReport};
