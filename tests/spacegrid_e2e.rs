//! Multi-process space-grid E2E: a real master, four real shard server
//! processes, two real worker processes — and one shard killed in the
//! middle of the job.
//!
//! The degradation contract under test: killing a shard mid-job must
//! cost at most the tasks queued on it (which the master re-plans from
//! its checkpoint), never a worker (workers route around the dead shard
//! and keep computing), and the job must still complete with correct
//! results.
//!
//! Child processes are this same test binary re-invoked with
//! `--ignored --exact <role test>` plus `ACC_GRID_*` environment
//! variables — no helper binaries to build or install.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use adaptive_spaces::cluster::TaskTiming;
use adaptive_spaces::framework::{
    task_template, Application, ExecError, Master, ResultEntry, TaskEntry, TaskExecutor, TaskSpec,
};
use adaptive_spaces::space::{Payload, Space, SpaceError, SpaceServer, TupleStore};
use adaptive_spaces::spacegrid::PartitionedSpace;

const JOB: &str = "gridjob";
const TASKS: u64 = 80;

// ---------------------------------------------------------------------
// Child roles. Each is an `#[ignore]`d test the parent re-invokes; the
// env-var guard makes a bare `cargo test -- --ignored` run skip them.
// ---------------------------------------------------------------------

/// Shard role: hosts one space server on an ephemeral port, announces
/// the address on stdout, then serves until the parent kills it.
#[test]
#[ignore = "child process role for grid_job_survives_shard_kill"]
fn grid_child_shard() {
    if std::env::var("ACC_GRID_ROLE").as_deref() != Ok("shard") {
        return;
    }
    let space = Space::new("grid-shard");
    let server = SpaceServer::spawn(space, "127.0.0.1:0").expect("bind shard server");
    println!("SHARD_ADDR {}", server.addr());
    std::io::stdout().flush().unwrap();
    loop {
        std::thread::sleep(Duration::from_secs(1));
    }
}

/// Worker role: connects a `PartitionedSpace` over `ACC_SHARDS`, then
/// loops take-task / compute / write-result until the grid closes.
/// Transient grid faults (a dying shard) are ridden out, not fatal —
/// that is the "no worker deaths" half of the contract.
#[test]
#[ignore = "child process role for grid_job_survives_shard_kill"]
fn grid_child_worker() {
    if std::env::var("ACC_GRID_ROLE").as_deref() != Ok("worker") {
        return;
    }
    let name = std::env::var("ACC_GRID_WORKER").unwrap_or_else(|_| "worker".into());
    let addrs: Vec<std::net::SocketAddr> = std::env::var("ACC_SHARDS")
        .expect("ACC_SHARDS set for worker role")
        .split(',')
        .map(|a| a.parse().expect("shard address"))
        .collect();
    let grid = PartitionedSpace::connect(&addrs).expect("connect worker grid");
    println!("WORKER_READY");
    std::io::stdout().flush().unwrap();
    let template = task_template(JOB);
    loop {
        match grid.take(&template, Some(Duration::from_millis(200))) {
            Ok(Some(tuple)) => {
                let task = TaskEntry::from_tuple(&tuple).expect("task tuple");
                let x: u64 = task.input().expect("u64 input");
                std::thread::sleep(Duration::from_millis(3)); // pretend to work
                let result = ResultEntry {
                    job: task.job.clone(),
                    task_id: task.task_id,
                    worker: name.clone(),
                    payload: (x * x).to_bytes(),
                    compute_ms: 3.0,
                    span_ms: 0.0,
                    error: None,
                    timing: TaskTiming::default(),
                };
                // A result must not be lost to a shard dying between the
                // take and the write: retry until a (possibly rerouted)
                // write lands or the grid closes.
                loop {
                    match grid.write(result.to_tuple()) {
                        Ok(_) => break,
                        Err(SpaceError::Closed) => return,
                        Err(_) => std::thread::sleep(Duration::from_millis(50)),
                    }
                }
            }
            Ok(None) => {}
            Err(SpaceError::Closed) => return,
            // e.g. every shard momentarily unreachable: back off, retry.
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

// ---------------------------------------------------------------------
// Parent-side machinery.
// ---------------------------------------------------------------------

/// A child process killed on drop, so a failing assertion can't leak
/// shard/worker processes past the test run.
struct ChildGuard {
    child: Child,
}

impl ChildGuard {
    fn alive(&mut self) -> bool {
        matches!(self.child.try_wait(), Ok(None))
    }
}

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Re-invokes this test binary as a child role and waits for its
/// announcement line (`prefix ...`), returning the guard and the line's
/// payload.
fn spawn_role(
    role_test: &str,
    role: &str,
    envs: &[(&str, String)],
    announce_prefix: &str,
) -> (ChildGuard, String) {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = Command::new(exe);
    cmd.args(["--ignored", "--exact", role_test, "--nocapture"])
        .env("ACC_GRID_ROLE", role)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    for (key, value) in envs {
        cmd.env(key, value);
    }
    let mut child = cmd.spawn().expect("spawn child role");
    let stdout = child.stdout.take().expect("piped stdout");
    let guard = ChildGuard { child };
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut reader = BufReader::new(stdout);
    loop {
        assert!(
            Instant::now() < deadline,
            "{role_test} never announced '{announce_prefix}'"
        );
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read child stdout");
        assert!(n > 0, "{role_test} exited before announcing");
        // libtest's own progress output ("test x ...") shares the line
        // with the role's announcement, so match anywhere in the line.
        if let Some(at) = line.find(announce_prefix) {
            let rest = line[at + announce_prefix.len()..].trim();
            let rest = rest.to_owned();
            // Detach the reader so the child never blocks on a full pipe.
            std::thread::spawn(move || {
                let mut sink = String::new();
                while let Ok(n) = reader.read_line(&mut sink) {
                    if n == 0 {
                        break;
                    }
                    sink.clear();
                }
            });
            return (guard, rest);
        }
    }
}

/// Sums squares of 0..n, exactly like the in-process framework tests —
/// but the executor never runs here: real worker processes compute.
struct SumSquares {
    n: u64,
    total: u64,
}

impl Application for SumSquares {
    fn job_name(&self) -> String {
        JOB.into()
    }
    fn bundle_name(&self) -> String {
        "gridjob-bundle".into()
    }
    fn bundle_kb(&self) -> usize {
        4
    }
    fn plan(&mut self) -> Vec<TaskSpec> {
        (0..self.n).map(|i| TaskSpec::new(i, &i)).collect()
    }
    fn executor(&self) -> Arc<dyn TaskExecutor> {
        struct Unused;
        impl TaskExecutor for Unused {
            fn execute(
                &self,
                _task: &adaptive_spaces::framework::TaskEntry,
            ) -> Result<Vec<u8>, ExecError> {
                unreachable!("executed by worker processes, not in-process")
            }
        }
        Arc::new(Unused)
    }
    fn absorb(&mut self, _task_id: u64, payload: &[u8]) -> Result<(), ExecError> {
        self.total += u64::from_bytes(payload).map_err(ExecError::Decode)?;
        Ok(())
    }
}

#[test]
fn grid_job_survives_shard_kill() {
    // Four shard server processes.
    let mut shards = Vec::new();
    let mut addrs = Vec::new();
    for _ in 0..4 {
        let (guard, addr) = spawn_role("grid_child_shard", "shard", &[], "SHARD_ADDR");
        addrs.push(addr);
        shards.push(guard);
    }
    let shard_list = addrs.join(",");

    // Two worker processes over the full grid.
    let mut workers = Vec::new();
    for i in 0..2 {
        let (guard, _) = spawn_role(
            "grid_child_worker",
            "worker",
            &[
                ("ACC_SHARDS", shard_list.clone()),
                ("ACC_GRID_WORKER", format!("pw{i}")),
            ],
            "WORKER_READY",
        );
        workers.push(guard);
    }

    // The master dispatches through its own grid client. Lost tasks are
    // re-planned from the checkpoint, so a shard dying with queued tasks
    // costs a retry round, not the job.
    let socket_addrs: Vec<std::net::SocketAddr> =
        addrs.iter().map(|a| a.parse().unwrap()).collect();
    let grid = Arc::new(PartitionedSpace::connect(&socket_addrs).expect("master grid"));
    let mut master = Master::new(grid.clone());
    master.result_timeout = Duration::from_secs(2);
    let checkpoint = std::env::temp_dir().join(format!("acc-grid-e2e-{}.ckpt", std::process::id()));
    let _ = std::fs::remove_file(&checkpoint);

    // Kill one shard shortly after dispatch begins — mid-job, while its
    // queue still holds tasks with high probability.
    let victim = shards.pop().expect("four shards spawned");
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(60));
        drop(victim); // ChildGuard::drop kills the process
    });

    let mut app = SumSquares { n: TASKS, total: 0 };
    let mut report = None;
    for _attempt in 0..5 {
        let r = master
            .run_with_checkpoint(&mut app, &checkpoint, 8)
            .expect("grid stays serviceable for the master");
        let complete = r.complete;
        report = Some(r);
        if complete {
            break;
        }
    }
    killer.join().unwrap();
    let report = report.expect("at least one attempt ran");
    assert!(
        report.complete,
        "job never completed after retries: {report:?}"
    );

    // Correctness: every task result arrived exactly once.
    let expected: u64 = (0..TASKS).map(|i| i * i).sum();
    assert_eq!(app.total, expected, "wrong aggregate after shard kill");

    // Degradation posture: the dead shard is struck out, the rest serve.
    assert_eq!(grid.shard_count(), 4);
    assert!(grid.healthy_count() >= 3, "survivors must stay healthy");

    // No worker deaths: both worker processes are still running, then
    // exit cleanly once the grid closes.
    for worker in &mut workers {
        assert!(worker.alive(), "worker process died during the job");
    }
    grid.close();
    let deadline = Instant::now() + Duration::from_secs(10);
    for worker in &mut workers {
        loop {
            match worker.child.try_wait().expect("wait worker") {
                Some(status) => {
                    assert!(status.success(), "worker exited uncleanly: {status}");
                    break;
                }
                None => {
                    assert!(Instant::now() < deadline, "worker never exited after close");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }
    // Leftover task tuples for the killed shard's re-planned round may
    // exist; the checkpoint was removed by the completed run.
    assert!(!checkpoint.exists(), "completed run must remove checkpoint");
}
