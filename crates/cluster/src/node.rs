//! Cluster nodes.

use std::sync::Arc;
use std::time::Instant;

use crate::meter::{LoadMix, UsageHistory};

/// Static description of a machine: the paper's testbeds mix 300 MHz and
/// 800 MHz Pentium-class PCs with 64–256 MB of RAM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSpec {
    /// Host name.
    pub name: String,
    /// Clock speed in MHz; used as the relative speed factor.
    pub speed_mhz: u32,
    /// Number of processors (the paper's testbed machines had one).
    pub cores: u32,
    /// Physical memory in MB.
    pub memory_mb: u32,
}

impl NodeSpec {
    /// Creates a spec.
    pub fn new(name: impl Into<String>, speed_mhz: u32, memory_mb: u32) -> NodeSpec {
        NodeSpec {
            name: name.into(),
            speed_mhz,
            cores: 1,
            memory_mb,
        }
    }

    /// Speed relative to a reference clock (e.g. the 800 MHz master).
    pub fn speed_factor(&self, reference_mhz: u32) -> f64 {
        self.speed_mhz as f64 / reference_mhz as f64
    }
}

/// A live node: spec plus mutable load state shared with its SNMP agent and
/// any load generators targeting it.
#[derive(Debug, Clone)]
pub struct Node {
    spec: NodeSpec,
    load: Arc<LoadMix>,
    history: Arc<parking_lot::Mutex<UsageHistory>>,
    started: Instant,
}

impl Node {
    /// Brings a node "online".
    pub fn new(spec: NodeSpec) -> Node {
        Node {
            spec,
            load: Arc::new(LoadMix::default()),
            history: Arc::new(parking_lot::Mutex::new(UsageHistory::new(4096))),
            started: Instant::now(),
        }
    }

    /// The node's static description.
    pub fn spec(&self) -> &NodeSpec {
        &self.spec
    }

    /// Shared load-mix handle (SNMP agents and load generators hold this).
    pub fn load(&self) -> Arc<LoadMix> {
        self.load.clone()
    }

    /// Total CPU utilisation percent in `[0, 100]` — what `hrProcessorLoad`
    /// reports.
    pub fn cpu_load(&self) -> u64 {
        self.load.total()
    }

    /// Free memory estimate in KB: total minus a load-proportional working
    /// set. A crude model, but it gives the monitoring layer a second,
    /// consistent variable to poll.
    pub fn free_memory_kb(&self) -> u64 {
        let total_kb = self.spec.memory_mb as u64 * 1024;
        let used = total_kb * self.cpu_load() / 100;
        total_kb.saturating_sub(used / 2).max(total_kb / 10)
    }

    /// Agent uptime in SNMP TimeTicks (hundredths of a second).
    pub fn uptime_ticks(&self) -> u64 {
        (self.started.elapsed().as_millis() / 10) as u64
    }

    /// Records the current utilisation into the usage history, stamped with
    /// the caller's clock (milliseconds since experiment start).
    pub fn record_usage(&self, at_ms: u64) {
        let load = self.cpu_load();
        self.history.lock().record(at_ms, load);
    }

    /// A copy of the recorded usage history.
    pub fn usage_history(&self) -> UsageHistory {
        self.history.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_speed_factor() {
        let slow = NodeSpec::new("w1", 300, 64);
        let fast = NodeSpec::new("w2", 800, 256);
        assert!((slow.speed_factor(800) - 0.375).abs() < 1e-12);
        assert!((fast.speed_factor(800) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cpu_load_blends_framework_and_background() {
        let node = Node::new(NodeSpec::new("w", 800, 256));
        assert_eq!(node.cpu_load(), 0);
        node.load().set_framework(40);
        node.load().set_background(30);
        // Background squeezes the framework share: 30 + 40·0.7 = 58.
        assert_eq!(node.cpu_load(), 58);
        node.load().set_background(100);
        assert_eq!(node.cpu_load(), 100, "hogged node reads saturated");
    }

    #[test]
    fn free_memory_shrinks_under_load() {
        let node = Node::new(NodeSpec::new("w", 300, 64));
        let idle = node.free_memory_kb();
        node.load().set_background(100);
        let busy = node.free_memory_kb();
        assert!(busy < idle);
        assert!(busy >= 64 * 1024 / 10, "floor at 10% of RAM");
    }

    #[test]
    fn usage_history_records() {
        let node = Node::new(NodeSpec::new("w", 800, 256));
        node.load().set_background(25);
        node.record_usage(0);
        node.load().set_background(75);
        node.record_usage(100);
        let h = node.usage_history();
        let points: Vec<_> = h.points().collect();
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].load, 25);
        assert_eq!(points[1].load, 75);
        assert_eq!(points[1].at_ms, 100);
    }
}
