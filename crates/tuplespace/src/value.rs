//! Field values stored in tuples.
//!
//! JavaSpaces entries carry serialized Java objects; the Rust equivalent is a
//! closed set of typed values. Matching (and therefore equality) must be
//! deterministic, so floats compare by bit pattern.

use bytes::Bytes;
use std::fmt;

/// A single typed field value inside a [`crate::Tuple`].
#[derive(Debug, Clone)]
pub enum Value {
    /// Signed 64-bit integer.
    Int(i64),
    /// IEEE-754 double. Compared bitwise so that matching is deterministic
    /// (`NaN` matches an identical `NaN`).
    Float(f64),
    /// Boolean flag.
    Bool(bool),
    /// UTF-8 string.
    Str(String),
    /// Opaque binary payload (serialized application state — the analogue of
    /// a serialized Java object travelling through the space). Ref-counted:
    /// cloning is O(1), and values decoded from a network frame borrow the
    /// frame's allocation instead of copying out of it.
    Bytes(Bytes),
    /// Ordered list of values.
    List(Vec<Value>),
}

impl Value {
    /// A short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Bool(_) => "bool",
            Value::Str(_) => "str",
            Value::Bytes(_) => "bytes",
            Value::List(_) => "list",
        }
    }

    /// Returns the integer if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float if this is a `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the bool if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the string slice if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the byte slice if this is a `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(v) => Some(v.as_ref()),
            _ => None,
        }
    }

    /// Returns the list if this is a `List`.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(v) => Some(v),
            _ => None,
        }
    }

    /// Approximate in-memory size in bytes; used by space statistics and the
    /// cost model (entry sizes drive the paper's task-planning overheads).
    pub fn size_hint(&self) -> usize {
        match self {
            Value::Int(_) | Value::Float(_) => 8,
            Value::Bool(_) => 1,
            Value::Str(s) => s.len(),
            Value::Bytes(b) => b.len(),
            Value::List(l) => l.iter().map(Value::size_hint).sum::<usize>() + 8,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bytes(a), Value::Bytes(b)) => a == b,
            (Value::List(a), Value::List(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v:?}"),
            Value::Bytes(v) => write!(f, "<{} bytes>", v.len()),
            Value::List(v) => {
                write!(f, "[")?;
                for (i, item) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(Bytes::from(v))
    }
}

impl From<Bytes> for Value {
    fn from(v: Bytes) -> Self {
        Value::Bytes(v)
    }
}

impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Self {
        Value::List(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_roundtrip_and_eq() {
        let v = Value::from(42i64);
        assert_eq!(v.as_int(), Some(42));
        assert_eq!(v, Value::Int(42));
        assert_ne!(v, Value::Int(43));
        assert_eq!(v.type_name(), "int");
    }

    #[test]
    fn float_eq_is_bitwise() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_ne!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(Value::Float(1.5), Value::Float(1.5));
    }

    #[test]
    fn cross_type_never_equal() {
        assert_ne!(Value::Int(1), Value::Float(1.0));
        assert_ne!(Value::Bool(true), Value::Int(1));
        assert_ne!(Value::Str("1".into()), Value::Int(1));
    }

    #[test]
    fn accessors_reject_wrong_type() {
        let v = Value::from("hello");
        assert_eq!(v.as_str(), Some("hello"));
        assert_eq!(v.as_int(), None);
        assert_eq!(v.as_float(), None);
        assert_eq!(v.as_bool(), None);
        assert_eq!(v.as_bytes(), None);
        assert!(v.as_list().is_none());
    }

    #[test]
    fn list_values() {
        let v = Value::from(vec![Value::Int(1), Value::Str("x".into())]);
        let l = v.as_list().unwrap();
        assert_eq!(l.len(), 2);
        assert_eq!(l[0].as_int(), Some(1));
        assert_eq!(format!("{v}"), "[1, \"x\"]");
    }

    #[test]
    fn size_hints() {
        assert_eq!(Value::Int(0).size_hint(), 8);
        assert_eq!(Value::Bool(true).size_hint(), 1);
        assert_eq!(Value::Str("abcd".into()).size_hint(), 4);
        assert_eq!(Value::from(vec![0u8; 100]).size_hint(), 100);
        assert_eq!(
            Value::List(vec![Value::Int(0), Value::Int(1)]).size_hint(),
            24
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Value::Int(5)), "5");
        assert_eq!(format!("{}", Value::Str("a".into())), "\"a\"");
        assert_eq!(format!("{}", Value::from(vec![1u8, 2])), "<2 bytes>");
    }
}
