//! # acc-durability
//!
//! The byte-level durability engine underneath the tuple space and the
//! master's checkpoint/resume: a segmented, CRC-framed append-only
//! write-ahead log ([`Wal`]) with group commit, plus atomic snapshot
//! files ([`snapshot`]). The engine is payload-agnostic — callers hand it
//! opaque records (the tuple space encodes ops with its own wire codec)
//! and get back exactly the committed prefix after a crash.
//!
//! ## Crash model
//!
//! The log tolerates *torn tails*: a crash mid-append leaves a partial
//! frame at the end of the newest segment, and recovery truncates the log
//! at the first frame whose length or CRC does not check out instead of
//! failing. Every complete frame before that point is replayed. How much
//! of the acknowledged tail survives a crash is governed by the
//! [`SyncPolicy`] — `Always` fsyncs every append, `EveryN`/`IntervalMs`
//! amortize the fsync over a group of appends (group commit), `Never`
//! leaves flushing to the OS.

#![warn(missing_docs)]

mod crc;
mod series;
pub mod snapshot;
mod wal;

pub use crc::crc32;
pub use snapshot::{load_latest_snapshot, write_atomic, write_snapshot};
pub use wal::{SyncPolicy, Wal, WalOptions, WalRecord, WalReplay};
