//! The remote node configuration engine (paper §4.3).
//!
//! Workers are thin: they carry no application code. At Start time a worker
//! fetches the application's executable bundle from a bundle server at the
//! master (the paper downloads jar files from a web server via the JVM's
//! dynamic class loader) and *links* it against the local executor
//! registry.
//!
//! **Substitution note.** Rust cannot safely load machine code at runtime,
//! so bundles resolve by name+checksum to pre-registered [`TaskExecutor`]
//! factories. What the paper's experiments actually measure is the *cost*
//! of class loading on Start versus its absence on Resume; the bundle
//! fetch models exactly that cost (base + per-KB transfer/verify), and the
//! name-indirection preserves "workers need no pre-installed application
//! code".

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::task::TaskExecutor;

/// An executable bundle: the analogue of a jar file served from the
/// master's web server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeBundle {
    /// Bundle name (what task entries reference).
    pub name: String,
    /// Version; bumping it forces re-linking.
    pub version: u32,
    /// The "jar" contents (opaque; sized realistically so transfer cost is
    /// meaningful).
    pub bytes: Vec<u8>,
    checksum: u64,
}

impl CodeBundle {
    /// Packages a bundle, computing its checksum.
    pub fn new(name: impl Into<String>, version: u32, bytes: Vec<u8>) -> CodeBundle {
        let checksum = Self::fletcher64(&bytes);
        CodeBundle {
            name: name.into(),
            version,
            bytes,
            checksum,
        }
    }

    /// A bundle with synthetic contents of roughly `kb` kilobytes — used
    /// when the application's real "code size" is being modeled.
    pub fn synthetic(name: impl Into<String>, version: u32, kb: usize) -> CodeBundle {
        let name = name.into();
        let mut bytes = Vec::with_capacity(kb * 1024);
        let seed = name.as_bytes();
        for i in 0..kb * 1024 {
            bytes.push(seed[i % seed.len()].wrapping_add((i / 7) as u8));
        }
        CodeBundle::new(name, version, bytes)
    }

    /// Size in whole KB (rounded up).
    pub fn size_kb(&self) -> u64 {
        (self.bytes.len() as u64).div_ceil(1024)
    }

    /// The bundle's integrity checksum.
    pub fn checksum(&self) -> u64 {
        self.checksum
    }

    /// Verifies contents against the recorded checksum.
    pub fn verify(&self) -> bool {
        Self::fletcher64(&self.bytes) == self.checksum
    }

    fn fletcher64(bytes: &[u8]) -> u64 {
        let mut a: u64 = 0;
        let mut b: u64 = 0;
        for chunk in bytes.chunks(4) {
            let mut word = [0u8; 4];
            word[..chunk.len()].copy_from_slice(chunk);
            a = (a + u32::from_le_bytes(word) as u64) % 0xFFFF_FFFF;
            b = (b + a) % 0xFFFF_FFFF;
        }
        (b << 32) | a
    }
}

/// Errors from the configuration engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// No bundle published under that name.
    NoSuchBundle(String),
    /// The bundle's checksum did not verify.
    ChecksumMismatch(String),
    /// No executor registered for the bundle name.
    LinkFailure(String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::NoSuchBundle(name) => write!(f, "no such bundle: {name}"),
            LoadError::ChecksumMismatch(name) => write!(f, "checksum mismatch: {name}"),
            LoadError::LinkFailure(name) => write!(f, "no executor registered for: {name}"),
        }
    }
}

impl std::error::Error for LoadError {}

/// Serves code bundles to workers, with a modeled transfer cost — the web
/// server residing at the master.
#[derive(Debug)]
pub struct BundleServer {
    bundles: Mutex<HashMap<String, CodeBundle>>,
    base_cost: Duration,
    per_kb_cost: Duration,
}

impl BundleServer {
    /// Creates a server with the given transfer-cost model.
    pub fn new(base_cost: Duration, per_kb_cost: Duration) -> Arc<BundleServer> {
        Arc::new(BundleServer {
            bundles: Mutex::new(HashMap::new()),
            base_cost,
            per_kb_cost,
        })
    }

    /// Publishes (or replaces) a bundle.
    pub fn publish(&self, bundle: CodeBundle) {
        self.bundles.lock().insert(bundle.name.clone(), bundle);
    }

    /// Fetches a bundle and the modeled transfer cost the caller should pay
    /// (the worker runtime sleeps for it — this is the Start-time
    /// class-loading overhead).
    pub fn fetch(&self, name: &str) -> Result<(CodeBundle, Duration), LoadError> {
        let bundle = self
            .bundles
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| LoadError::NoSuchBundle(name.to_owned()))?;
        let cost = self.base_cost + self.per_kb_cost * (bundle.size_kb() as u32);
        Ok((bundle, cost))
    }

    /// Names of all published bundles.
    pub fn published(&self) -> Vec<String> {
        let mut names: Vec<_> = self.bundles.lock().keys().cloned().collect();
        names.sort();
        names
    }
}

/// The worker-side link table: bundle name → executor.
#[derive(Default)]
pub struct ExecutorRegistry {
    executors: Mutex<HashMap<String, Arc<dyn TaskExecutor>>>,
}

impl fmt::Debug for ExecutorRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecutorRegistry")
            .field("executors", &self.executors.lock().len())
            .finish()
    }
}

impl ExecutorRegistry {
    /// An empty registry.
    pub fn new() -> Arc<ExecutorRegistry> {
        Arc::new(ExecutorRegistry::default())
    }

    /// Registers the executor a bundle name links to.
    pub fn register(&self, bundle_name: impl Into<String>, executor: Arc<dyn TaskExecutor>) {
        self.executors.lock().insert(bundle_name.into(), executor);
    }

    /// Links a fetched bundle: verifies integrity and resolves the
    /// executor.
    pub fn link(&self, bundle: &CodeBundle) -> Result<Arc<dyn TaskExecutor>, LoadError> {
        if !bundle.verify() {
            return Err(LoadError::ChecksumMismatch(bundle.name.clone()));
        }
        self.executors
            .lock()
            .get(&bundle.name)
            .cloned()
            .ok_or_else(|| LoadError::LinkFailure(bundle.name.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{ExecError, TaskEntry};

    struct EchoExecutor;
    impl TaskExecutor for EchoExecutor {
        fn execute(&self, task: &TaskEntry) -> Result<Vec<u8>, ExecError> {
            Ok(task.payload.clone())
        }
    }

    #[test]
    fn bundle_checksum_verifies() {
        let b = CodeBundle::synthetic("render", 1, 8);
        assert!(b.verify());
        assert_eq!(b.size_kb(), 8);
        let mut tampered = b.clone();
        tampered.bytes[0] ^= 0xFF;
        assert!(!tampered.verify());
    }

    #[test]
    fn fetch_costs_scale_with_size() {
        let server = BundleServer::new(Duration::from_millis(10), Duration::from_millis(1));
        server.publish(CodeBundle::synthetic("small", 1, 2));
        server.publish(CodeBundle::synthetic("large", 1, 100));
        let (_, small_cost) = server.fetch("small").unwrap();
        let (_, large_cost) = server.fetch("large").unwrap();
        assert_eq!(small_cost, Duration::from_millis(12));
        assert_eq!(large_cost, Duration::from_millis(110));
    }

    #[test]
    fn fetch_missing_bundle_fails() {
        let server = BundleServer::new(Duration::ZERO, Duration::ZERO);
        assert_eq!(
            server.fetch("ghost"),
            Err(LoadError::NoSuchBundle("ghost".into()))
        );
    }

    #[test]
    fn publish_lists_and_replaces() {
        let server = BundleServer::new(Duration::ZERO, Duration::ZERO);
        server.publish(CodeBundle::synthetic("a", 1, 1));
        server.publish(CodeBundle::synthetic("a", 2, 1));
        server.publish(CodeBundle::synthetic("b", 1, 1));
        assert_eq!(server.published(), vec!["a".to_owned(), "b".to_owned()]);
        let (bundle, _) = server.fetch("a").unwrap();
        assert_eq!(bundle.version, 2);
    }

    #[test]
    fn link_resolves_registered_executor() {
        let registry = ExecutorRegistry::new();
        registry.register("render", Arc::new(EchoExecutor));
        let bundle = CodeBundle::synthetic("render", 1, 4);
        let exec = registry.link(&bundle).unwrap();
        let task = TaskEntry::new("j", 1, vec![5]);
        assert_eq!(exec.execute(&task).unwrap(), vec![5]);
    }

    #[test]
    fn link_failures() {
        let registry = ExecutorRegistry::new();
        let bundle = CodeBundle::synthetic("ghost", 1, 1);
        assert!(matches!(
            registry.link(&bundle),
            Err(LoadError::LinkFailure(_))
        ));
        registry.register("ghost", Arc::new(EchoExecutor));
        let mut tampered = bundle.clone();
        tampered.bytes[10] ^= 1;
        assert!(matches!(
            registry.link(&tampered),
            Err(LoadError::ChecksumMismatch(_))
        ));
    }
}
