//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no network access to crates.io, so this
//! workspace ships a small, deterministic property-testing harness covering
//! the subset of the proptest API the test suite uses:
//!
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map` and
//!   `prop_flat_map`;
//! * integer-range strategies, [`any`](arbitrary::any) for primitives,
//!   [`Just`](strategy::Just), [`prop_oneof!`], and simple
//!   character-class regex strategies for `&str`;
//! * [`collection::vec`] and [`collection::btree_map`];
//! * the [`proptest!`] test macro with `#![proptest_config(..)]`, plus
//!   [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike real proptest there is no shrinking: on failure the harness
//! reports the generated inputs for the failing case verbatim. Generation
//! is deterministic per test name, so failures reproduce exactly.

pub mod test_runner {
    //! Deterministic random generation and run configuration.

    /// Run configuration: how many random cases each property executes.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic splitmix64 generator, seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from an arbitrary string (the test name).
        pub fn deterministic(seed: &str) -> TestRng {
            let mut state = 0x9E37_79B9_7F4A_7C15u64;
            for b in seed.bytes() {
                state = state.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
            }
            TestRng { state }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "empty range");
            self.next_u64() % n
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::fmt::Debug;
    use std::ops::Range;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value: Debug;

        /// Produces one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Derives a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Type-erased generator arm used by [`prop_oneof!`](crate::prop_oneof).
    pub type Arm<V> = Box<dyn Fn(&mut TestRng) -> V>;

    /// Uniform choice between several strategies of one value type.
    pub struct Union<V> {
        arms: Vec<Arm<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union; `arms` must be non-empty.
        pub fn new(arms: Vec<Arm<V>>) -> Union<V> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V: Debug> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.below(self.arms.len() as u64) as usize;
            (self.arms[i])(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {
            $(
                impl Strategy for Range<$ty> {
                    type Value = $ty;
                    fn generate(&self, rng: &mut TestRng) -> $ty {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        (self.start as i128 + rng.below(span) as i128) as $ty
                    }
                }
            )*
        };
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // Tuples of strategies generate tuples of values, componentwise — the
    // upstream `(a, b).prop_map(|(x, y)| ...)` composition idiom.
    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+)),*) => {
            $(
                #[allow(non_snake_case)]
                impl<$($name: Strategy),+> Strategy for ($($name,)+)
                where
                    $($name::Value: Debug),+
                {
                    type Value = ($($name::Value,)+);
                    fn generate(&self, rng: &mut TestRng) -> Self::Value {
                        let ($($name,)+) = self;
                        ($($name.generate(rng),)+)
                    }
                }
            )*
        };
    }

    impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

    /// `&str` literals act as tiny regex strategies. Supported shapes:
    /// one character class with a repetition count (`"[a-z]{1,6}"`,
    /// `"[a-zA-Z0-9]{0,16}"`); anything else is generated literally.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_class_pattern(self) {
                Some((chars, lo, hi)) => {
                    let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                    (0..len)
                        .map(|_| chars[rng.below(chars.len() as u64) as usize])
                        .collect()
                }
                None => (*self).to_owned(),
            }
        }
    }

    /// Parses `[class]{lo,hi}` / `[class]{n}` / `[class]`; `None` if the
    /// pattern is not of that shape.
    fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pattern.strip_prefix('[')?;
        let (class, rest) = rest.split_once(']')?;
        let mut chars = Vec::new();
        let mut it = class.chars().peekable();
        while let Some(c) = it.next() {
            if it.peek() == Some(&'-') {
                let mut ahead = it.clone();
                ahead.next();
                if let Some(&end) = ahead.peek() {
                    it.next();
                    it.next();
                    for x in c..=end {
                        chars.push(x);
                    }
                    continue;
                }
            }
            chars.push(c);
        }
        if chars.is_empty() {
            return None;
        }
        if rest.is_empty() {
            return Some((chars, 1, 1));
        }
        let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match counts.split_once(',') {
            Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
            None => {
                let n = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        Some((chars, lo, hi))
    }

    /// Size specification for collection strategies: a fixed size or a
    /// half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        pub(crate) fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    /// Strategy for `Vec<T>` with sizes drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub(crate) fn vec_strategy<S: Strategy>(
        element: S,
        size: impl Into<SizeRange>,
    ) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy for `BTreeMap<K, V>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord + Clone,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let want = self.size.pick(rng);
            let mut map = BTreeMap::new();
            // Duplicate keys collapse; bounded retries keep this total.
            let mut attempts = 0;
            while map.len() < want && attempts < want * 10 + 16 {
                map.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            map
        }
    }

    pub(crate) fn btree_map_strategy<K, V>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V> {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }
}

pub mod arbitrary {
    //! Default strategies for primitive types.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::fmt::Debug;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Generates one arbitrary value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// Full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }

    /// Strategy returned by [`any`].
    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {
            $(
                impl Arbitrary for $ty {
                    fn arbitrary_value(rng: &mut TestRng) -> $ty {
                        rng.next_u64() as $ty
                    }
                }
            )*
        };
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{
        btree_map_strategy, vec_strategy, BTreeMapStrategy, SizeRange, Strategy, VecStrategy,
    };

    /// Generates `Vec`s of `element` with sizes in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        vec_strategy(element, size)
    }

    /// Generates `BTreeMap`s from `key`/`value` strategies.
    pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord + Clone,
    {
        btree_map_strategy(key, value, size)
    }
}

pub mod prelude {
    //! Everything a property test usually imports.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform random choice among strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let s = $strat;
                ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&s, rng)
                }) as $crate::strategy::Arm<_>
            }),+
        ])
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("property assertion failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            panic!("property assertion failed: {}", format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "property assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "property assertion failed: {}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*),
                l,
                r
            );
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            panic!(
                "property assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            );
        }
    }};
}

/// Declares property tests. Each function body runs once per generated
/// case; on panic the inputs of the failing case are printed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let config = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    )+
                    let inputs = {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(&format!(
                                "  {} = {:?}\n",
                                stringify!($arg),
                                $arg
                            ));
                        )+
                        s
                    };
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(payload) = outcome {
                        eprintln!(
                            "proptest case {}/{} of {} failed with inputs:\n{}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            inputs
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..200 {
            let v = Strategy::generate(&(-5i64..7), &mut rng);
            assert!((-5..7).contains(&v));
            let u = Strategy::generate(&(3usize..4), &mut rng);
            assert_eq!(u, 3);
        }
    }

    #[test]
    fn regex_class_shapes() {
        let mut rng = TestRng::deterministic("regex");
        for _ in 0..100 {
            let s = Strategy::generate(&"[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = Strategy::generate(&"[a-zA-Z0-9]{0,16}", &mut rng);
            assert!(t.len() <= 16);
            assert!(t.chars().all(|c| c.is_ascii_alphanumeric()));
        }
    }

    #[test]
    fn collections_honor_sizes() {
        let mut rng = TestRng::deterministic("coll");
        for _ in 0..50 {
            let v = Strategy::generate(&crate::collection::vec(0u32..10, 2..5), &mut rng);
            assert!((2..5).contains(&v.len()));
            let exact = Strategy::generate(&crate::collection::vec(any::<bool>(), 8), &mut rng);
            assert_eq!(exact.len(), 8);
            let m = Strategy::generate(
                &crate::collection::btree_map("[a-z]{1,6}", -3i64..3, 1..4),
                &mut rng,
            );
            assert!(!m.is_empty() && m.len() < 4);
        }
    }

    #[test]
    fn oneof_and_maps_compose() {
        #[derive(Debug, Clone, PartialEq)]
        enum Pick {
            A(i64),
            B,
        }
        let strat = prop_oneof![(0i64..5).prop_map(Pick::A), Just(Pick::B)];
        let mut rng = TestRng::deterministic("oneof");
        let mut saw_a = false;
        let mut saw_b = false;
        for _ in 0..100 {
            match Strategy::generate(&strat, &mut rng) {
                Pick::A(v) => {
                    assert!((0..5).contains(&v));
                    saw_a = true;
                }
                Pick::B => saw_b = true,
            }
        }
        assert!(saw_a && saw_b);
    }

    #[test]
    fn flat_map_feeds_dependent_strategy() {
        let strat = (2usize..6).prop_flat_map(|n| crate::collection::vec(0u32..n as u32, n));
        let mut rng = TestRng::deterministic("flat");
        for _ in 0..50 {
            let v = Strategy::generate(&strat, &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| (x as usize) < v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_wires_everything(xs in crate::collection::vec(0i64..100, 0..10), flag in any::<bool>()) {
            prop_assert!(xs.len() < 10);
            let _ = flag;
            prop_assert_eq!(xs.iter().rev().count(), xs.len());
        }
    }
}
